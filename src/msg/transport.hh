/**
 * @file
 * Transport: one node's message-passing endpoint.
 *
 * Implements MPI point-to-point semantics over the simulated
 * network: envelope matching on (source, tag, context) with FIFO
 * non-overtaking per pair, an unexpected-message queue, and two wire
 * protocols:
 *
 *  - eager: the payload is pushed immediately; the receiver copies
 *    it out of system buffers (per-byte copy cost on both sides);
 *  - rendezvous (above the eager threshold): RTS -> CTS handshake,
 *    then the payload lands directly in the user buffer (no receive
 *    copy) — this is why long-message behaviour differs so sharply
 *    from short-message behaviour on the real machines.
 *
 * Three pieces of mid-90s hardware are modelled explicitly because
 * the paper attributes its headline results to them:
 *
 *  - a message COPROCESSOR (Intel Paragon's i860 MP): a fraction of
 *    the injection copy runs off the main processor, shrinking the
 *    per-message gap for pipelined long-message traffic;
 *  - a BLOCK TRANSFER ENGINE (Cray T3D's BLT): transfers at or above
 *    the BLT threshold replace both memory copies with a one-off
 *    descriptor-setup cost and stream at full link rate;
 *  - per-message SOFTWARE overhead (send/receive), the dominant term
 *    in every startup latency the paper measures.
 *
 * All software costs serialize on the owning node's CPU timeline, so
 * a root gathering from 63 children pays 63 receive overheads
 * back-to-back, exactly like the real thing.
 */

#ifndef CCSIM_MSG_TRANSPORT_HH
#define CCSIM_MSG_TRANSPORT_HH

#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_injector.hh"
#include "msg/message.hh"
#include "net/network.hh"
#include "sim/pool.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "sim/trace.hh"
#include "stats/metrics.hh"
#include "util/units.hh"

namespace ccsim::msg {

/** Wildcard tag for receives (matches any tag). */
constexpr int kAnyTag = -1;

/** Software/protocol parameters of a node's messaging system. */
struct TransportParams
{
    /** CPU cost to initiate any send (the o_s of LogP). */
    Time send_overhead = 0;

    /** CPU cost to complete any receive (the o_r of LogP). */
    Time recv_overhead = 0;

    /** Memory-copy bandwidth into/out of system buffers, MB/s. */
    double copy_bandwidth_mbs = 400.0;

    /** Payloads strictly larger than this go rendezvous. */
    Bytes eager_threshold = 4 * KiB;

    /** Extra CPU cost per side for the rendezvous handshake. */
    Time rendezvous_overhead = 0;

    /** Fraction [0,1] of the injection copy offloaded to a message
     *  coprocessor (0 = none, Paragon ~0.9). */
    double coprocessor_overlap = 0.0;

    /** Block-transfer engine present (T3D). */
    bool blt_enabled = false;

    /** Rendezvous payloads at or above this use the BLT. */
    Bytes blt_threshold = 16 * KiB;

    /** BLT descriptor setup cost (sender CPU). */
    Time blt_setup = 0;
};

class Fabric;

/**
 * Per-call software-overhead override.  Vendor MPI implementations
 * sometimes bypass the normal messaging layers inside specific
 * collectives (e.g.\ the Paragon NX scan fast path); a collective
 * passes an override to model that.  Negative fields keep the
 * machine defaults.
 */
struct CostOverride
{
    Time send = -1;
    Time recv = -1;
};

/** Completion state shared between a nonblocking op and its waiter. */
struct ReqState
{
    explicit ReqState(sim::Simulator &s) : done(s) {}

    sim::Trigger done;
    std::optional<Message> msg; // set for receives
    std::exception_ptr exc;
};

/**
 * Handle for a nonblocking send/receive.  The state slot is pooled
 * by the issuing Transport, so a Request must not outlive its
 * Machine — which was already the rule, since ReqState references
 * the Simulator.
 */
struct Request
{
    sim::PoolPtr<ReqState> state;

    /** True once the operation has completed (or failed). */
    bool test() const { return state && state->done.fired(); }
};

/** One node's messaging endpoint. */
class Transport
{
  public:
    /** @p fi (optional) injects faults: software overheads are
     *  scaled by the node's straggler factor, and when the fault
     *  spec makes message loss possible every wire payload runs the
     *  acknowledged timeout/retransmit protocol (see transmitWire).
     *  @p tm (optional) is the machine-wide transport metrics group;
     *  null means no collection and no overhead. */
    Transport(sim::Simulator &sim, net::Network &net, Fabric &fabric,
              int node, const TransportParams &params,
              sim::Trace *trace = nullptr,
              fault::FaultInjector *fi = nullptr,
              stats::TransportMetrics *tm = nullptr);

    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;

    /** This endpoint's node id. */
    int node() const { return node_; }

    const TransportParams &params() const { return params_; }

    /**
     * Blocking send.  Completes when the local resources are free to
     * reuse (eager: after local injection; rendezvous: after the
     * receiver's CTS and the data injection).  Self-sends are
     * buffered locally and never deadlock.
     */
    sim::Task<void> send(int dst, int tag, int context, Bytes bytes,
                         PayloadPtr payload = nullptr,
                         CostOverride ov = {});

    /**
     * Blocking receive matching (@p src | kAnySource,
     * @p tag | kAnyTag, @p context).  Returns the matched message.
     */
    sim::Task<Message> recv(int src, int tag, int context,
                            CostOverride ov = {});

    /** Nonblocking send; pair with wait(). */
    Request isend(int dst, int tag, int context, Bytes bytes,
                  PayloadPtr payload = nullptr, CostOverride ov = {});

    /** Nonblocking receive; pair with wait(). */
    Request irecv(int src, int tag, int context, CostOverride ov = {});

    /**
     * Wait for a request; returns the message for receives (an empty
     * Message for sends) and rethrows any failure.
     */
    sim::Task<Message> wait(Request req);

    /**
     * Combined send + receive, both in flight at once (the primitive
     * that keeps pairwise/ring/recursive-doubling exchanges from
     * deadlocking under the rendezvous protocol).
     */
    sim::Task<Message> sendrecv(int dst, int send_tag, Bytes bytes,
                                int src, int recv_tag, int context,
                                PayloadPtr payload = nullptr,
                                CostOverride ov = {});

    /**
     * Occupy this node's CPU for @p cost, serialized after any
     * earlier software activity on the node.  Exposed so collectives
     * can charge reduction arithmetic and per-call entry costs.
     */
    sim::Task<void> busy(Time cost);

    /** Messages sent (including self-sends). */
    std::uint64_t sendsStarted() const { return sends_; }

    /** Messages received (matched and completed). */
    std::uint64_t recvsCompleted() const { return recvs_; }

    /** Payload bytes sent. */
    Bytes bytesSent() const { return bytes_sent_; }

    /** Trace sink (may be null / disabled). */
    sim::Trace *trace() const { return trace_; }

  private:
    friend class Fabric;

    /** Rendezvous handshake state, shared sender <-> receiver. */
    struct Handshake
    {
        explicit Handshake(sim::Simulator &s) : cts(s), data(s) {}

        sim::Trigger cts;  // fired at the sender when CTS arrives
        sim::Trigger data; // fired at the receiver at data arrival
        Message msg;       // filled by the sender for the data phase
    };

    using HandshakePtr = sim::PoolPtr<Handshake>;

    /** An RTS awaiting a matching receive. */
    struct Rts
    {
        int src = 0;
        int tag = 0;
        int context = 0;
        Bytes bytes = 0;
        PayloadPtr payload;
        HandshakePtr hs;
        std::uint64_t seq = 0;
    };

    /** A parked receive awaiting a matching arrival. */
    struct PendingRecv
    {
        int src = 0;
        int tag = 0;
        int context = 0;
        std::coroutine_handle<> handle;
        std::optional<Message> eager;
        std::optional<Rts> rts;
    };

    bool matches(int want_src, int want_tag, int want_ctx,
                 int src, int tag, int ctx) const;

    /** Eager payload (or self-send) arrival at this node. */
    void deliverEager(Message m);

    /** RTS arrival at this node. */
    void deliverRts(Rts rts);

    /** Receiver side of the rendezvous protocol. */
    sim::Task<Message> recvRendezvous(Rts rts, CostOverride ov);

    /** Inject one wire message; returns its arrival time at dst. */
    Time injectAt(int dst, Bytes bytes, Time when);

    /** injectAt plus any drawn delay-fault penalty. */
    Time wireArrival(int dst, Bytes bytes, Time when);

    /**
     * Dispatch one wire message (eager payload, RTS, or rendezvous
     * data), transmitted no earlier than @p when; @p deliver is
     * invoked exactly once with the final arrival time and must
     * schedule the actual delivery itself.
     *
     * Without an injector this is injectAt + deliver, unchanged
     * timing, and the continuation is invoked directly — no type
     * erasure, no allocation.  With message loss possible it spawns
     * the reliableDeliver protocol coroutine instead (erasing
     * @p deliver into a sim::DeliverFn); with delay faults only, the
     * penalty is added to the arrival time inline.
     */
    template <typename F>
    void
    transmitWire(int dst, Bytes bytes, Time when, F &&deliver)
    {
        if (lossy_) {
            sim_.spawn(reliableDeliver(
                dst, bytes, when, sim::DeliverFn(std::forward<F>(deliver))));
            return;
        }
        deliver(wireArrival(dst, bytes, when));
    }

    /**
     * The acknowledged wire protocol used when faults can lose
     * messages.  Each attempt occupies the route (a lost worm still
     * held the wires), then either delivers and waits for a zero-byte
     * ack on the reverse route, or — on a black-holed link or a drop
     * draw — retransmits after an exponentially backed-off timeout in
     * simulated time.  Raises fault::FaultError through the
     * simulator's run loop once spec.retry_budget retransmissions
     * have failed.  Control traffic (acks, rendezvous CTS) is modelled
     * as reliable; a real protocol would piggyback sequence numbers,
     * which changes nothing observable at collective granularity.
     */
    sim::Task<void> reliableDeliver(int dst, Bytes bytes, Time when,
                                    sim::DeliverFn deliver);

    sim::Task<void> runSend(sim::PoolPtr<ReqState> st, int dst,
                            int tag, int context, Bytes bytes,
                            PayloadPtr payload, CostOverride ov);
    sim::Task<void> runRecv(sim::PoolPtr<ReqState> st, int src,
                            int tag, int context, CostOverride ov);

    /** Record a span if tracing is enabled. */
    void
    traceSpan(sim::SpanKind kind, Time start, Bytes bytes, int peer)
    {
        if (trace_ && trace_->enabled())
            trace_->record(sim::Span{node_, kind, start, sim_.now(),
                                     bytes, peer, {}});
    }

    sim::Simulator &sim_;
    net::Network &net_;
    Fabric &fabric_;
    int node_;
    TransportParams params_;
    sim::Trace *trace_ = nullptr;
    fault::FaultInjector *fi_ = nullptr;
    stats::TransportMetrics *tm_ = nullptr;
    bool lossy_ = false; //!< fi_ present and message loss possible

    Time cpu_free_ = 0;   // node CPU timeline
    Time copro_free_ = 0; // message coprocessor / DMA timeline

    std::uint64_t arrival_seq_ = 0;
    // Match queues are short (a handful of entries, FIFO-scanned) —
    // pooled vectors beat deques here: no chunk-map allocation per
    // endpoint, and erase-from-middle on a few entries is a trivial
    // move.
    std::vector<Message, sim::PoolAlloc<Message>> unexpected_;
    std::vector<Rts, sim::PoolAlloc<Rts>> pending_rts_;
    std::vector<PendingRecv *, sim::PoolAlloc<PendingRecv *>>
        pending_recvs_;

    /** Slot pools for the per-operation completion objects. */
    sim::Pool<ReqState> req_pool_;
    sim::Pool<Handshake> hs_pool_;

    std::uint64_t sends_ = 0;
    std::uint64_t recvs_ = 0;
    Bytes bytes_sent_ = 0;

  public:
    /** Completion-slot pool counters (for metrics assembly). */
    sim::PoolCounters
    poolCounters() const
    {
        sim::PoolCounters out = req_pool_.counters();
        const sim::PoolCounters &h = hs_pool_.counters();
        out.reuses += h.reuses;
        out.allocs += h.allocs;
        out.oversize += h.oversize;
        return out;
    }
};

/** Owns the Transport of every node on one machine. */
class Fabric
{
  public:
    /** Build @p n transports sharing one network and parameter set;
     *  @p trace (optional) receives activity spans from every node;
     *  @p fi (optional) threads fault injection into every endpoint;
     *  @p tm (optional) collects transport metrics across all nodes. */
    Fabric(sim::Simulator &sim, net::Network &net, int n,
           const TransportParams &params, sim::Trace *trace = nullptr,
           fault::FaultInjector *fi = nullptr,
           stats::TransportMetrics *tm = nullptr);

    ~Fabric();

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /** Endpoint of node @p i. */
    Transport &node(int i);

    /** Number of endpoints. */
    int size() const { return n_; }

  private:
    /** Endpoints live in one contiguous slab (placement-new): a
     *  single allocation per machine instead of one per node, and
     *  neighbouring ranks share cache lines during sweeps. */
    Transport *slab_ = nullptr;
    int n_ = 0;
};

} // namespace ccsim::msg

#endif // CCSIM_MSG_TRANSPORT_HH
