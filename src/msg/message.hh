/**
 * @file
 * The unit of communication between transports.
 *
 * A message carries its envelope (source, destination, tag, context),
 * its payload size, and — optionally — the payload bytes themselves.
 * Collectives and correctness tests run with payloads attached so
 * reductions and permutations can be verified bit-for-bit; large
 * benchmark sweeps run size-only so a 64-node 64 KB total exchange
 * does not allocate 256 MB per iteration.
 */

#ifndef CCSIM_MSG_MESSAGE_HH
#define CCSIM_MSG_MESSAGE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/units.hh"

namespace ccsim::msg {

/** Shared immutable payload buffer (absent in size-only mode). */
using PayloadPtr = std::shared_ptr<const std::vector<std::byte>>;

/** Wildcard source for receives (matches any sender). */
constexpr int kAnySource = -1;

/** A message envelope plus optional payload. */
struct Message
{
    int src = 0;
    int dst = 0;
    int tag = 0;
    int context = 0;
    Bytes bytes = 0;
    PayloadPtr payload;

    /** Simulated time the last byte reached the destination NIC. */
    Time arrival = 0;

    /** Arrival sequence number at the destination (FIFO matching). */
    std::uint64_t seq = 0;
};

/** Build a payload buffer from raw bytes. */
PayloadPtr makePayload(const void *data, std::size_t size);

/** Build a payload buffer from a vector of trivially-copyable T. */
template <typename T>
PayloadPtr
makePayload(const std::vector<T> &values)
{
    static_assert(std::is_trivially_copyable_v<T>);
    return makePayload(values.data(), values.size() * sizeof(T));
}

/** Reinterpret a payload as a vector of trivially-copyable T. */
template <typename T>
std::vector<T>
payloadAs(const PayloadPtr &p)
{
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out;
    if (!p || p->empty())
        return out;
    out.resize(p->size() / sizeof(T));
    std::memcpy(out.data(), p->data(), out.size() * sizeof(T));
    return out;
}

} // namespace ccsim::msg

#endif // CCSIM_MSG_MESSAGE_HH
