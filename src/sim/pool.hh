/**
 * @file
 * Allocation pools for the simulation hot path.
 *
 * Profiling the sweep engine (see DESIGN.md §4.11) shows ~560 heap
 * allocations per sweep point, dominated by coroutine frames and the
 * per-operation request/handshake objects — at ~60 us per point the
 * allocator IS the hot path.  Two pools remove almost all of it:
 *
 *  - FramePool: a thread-local size-class freelist that Task's
 *    promise types allocate coroutine frames from.  Frames are
 *    created and destroyed at an enormous rate but only a handful of
 *    distinct sizes exist, so a freelist turns every frame
 *    allocation after warm-up into a pointer pop.
 *
 *  - Pool<T> / PoolPtr<T>: an intrusive-refcount object pool used by
 *    the transport for its ReqState / Handshake completion objects,
 *    replacing std::make_shared.  Like the simulator itself it is
 *    single-threaded: a pool and all PoolPtrs into it must stay on
 *    one thread, and the pool must outlive its pointers (the
 *    transport owns its pools, and Requests already must not outlive
 *    their Machine because ReqState references the Simulator).
 *
 * Under AddressSanitizer, free slots are poisoned while parked on a
 * freelist and unpoisoned on reuse, so use-after-release bugs in
 * pooled objects are still caught.
 */

#ifndef CCSIM_SIM_POOL_HH
#define CCSIM_SIM_POOL_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

#if defined(__SANITIZE_ADDRESS__)
#define CCSIM_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CCSIM_POOL_ASAN 1
#endif
#endif

#ifdef CCSIM_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace ccsim::sim {

/** Poison a parked freelist region under ASan (no-op otherwise). */
inline void
poolPoison(void *p, std::size_t n)
{
#ifdef CCSIM_POOL_ASAN
    __asan_poison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
}

/** Re-arm a recycled region for use under ASan (no-op otherwise). */
inline void
poolUnpoison(void *p, std::size_t n)
{
#ifdef CCSIM_POOL_ASAN
    __asan_unpoison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
}

/** Allocation counters of a pool (monotonic over its lifetime). */
struct PoolCounters
{
    std::uint64_t reuses = 0;   //!< served from the freelist
    std::uint64_t allocs = 0;   //!< fell through to the heap
    std::uint64_t oversize = 0; //!< larger than any size class
};

/**
 * Thread-local size-class freelist for coroutine frames.
 *
 * Sizes are rounded up to kGranule-byte classes; blocks above the
 * largest class (or over-aligned frames, which never reach a promise
 * operator new without an align_val_t overload) go straight to the
 * global heap.  Each class keeps at most kMaxPerClass parked blocks
 * so a burst cannot pin memory forever.
 */
class FramePool
{
  public:
    static constexpr std::size_t kGranule = 64;
    static constexpr std::size_t kClasses = 40; //!< up to 2560 bytes
    static constexpr std::size_t kMaxPerClass = 512;

    FramePool() = default;
    FramePool(const FramePool &) = delete;
    FramePool &operator=(const FramePool &) = delete;

    ~FramePool()
    {
        for (std::size_t c = 0; c < kClasses; ++c) {
            Node *n = free_[c];
            while (n) {
                poolUnpoison(n, bytesFor(c));
                Node *next = n->next;
                ::operator delete(n);
                n = next;
            }
        }
    }

    void *
    allocate(std::size_t n)
    {
        std::size_t c = classFor(n);
        if (c >= kClasses) {
            ++counters_.oversize;
            return ::operator new(n);
        }
        if (Node *head = free_[c]) {
            free_[c] = head->next;
            --parked_[c];
            ++counters_.reuses;
            poolUnpoison(reinterpret_cast<char *>(head) + sizeof(Node),
                         bytesFor(c) - sizeof(Node));
            return head;
        }
        ++counters_.allocs;
        return ::operator new(bytesFor(c));
    }

    void
    release(void *p, std::size_t n) noexcept
    {
        std::size_t c = classFor(n);
        if (c >= kClasses || parked_[c] >= kMaxPerClass) {
            ::operator delete(p);
            return;
        }
        Node *node = static_cast<Node *>(p);
        node->next = free_[c];
        free_[c] = node;
        ++parked_[c];
        // The link word stays readable; everything past it is armed.
        poolPoison(static_cast<char *>(p) + sizeof(Node),
                   bytesFor(c) - sizeof(Node));
    }

    const PoolCounters &counters() const { return counters_; }

  private:
    struct Node
    {
        Node *next;
    };

    static std::size_t classFor(std::size_t n)
    {
        return n == 0 ? 0 : (n - 1) / kGranule;
    }

    static std::size_t bytesFor(std::size_t c)
    {
        return (c + 1) * kGranule;
    }

    Node *free_[kClasses] = {};
    std::uint32_t parked_[kClasses] = {};
    PoolCounters counters_;
};

/** The calling thread's coroutine-frame pool. */
inline FramePool &
framePool() noexcept
{
    thread_local FramePool pool;
    return pool;
}

/**
 * Standard-allocator shim over the thread-local FramePool, for the
 * small hot-path vectors (event buckets, trigger waiter spill,
 * transport match queues).  All instances compare equal; memory
 * must be released on the thread that will reuse it (true for the
 * simulator, which is single-threaded per Machine).
 */
template <typename T>
struct PoolAlloc
{
    using value_type = T;

    PoolAlloc() noexcept = default;

    template <typename U>
    PoolAlloc(const PoolAlloc<U> &) noexcept
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(framePool().allocate(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        framePool().release(p, n * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const PoolAlloc<U> &) const noexcept
    {
        return true;
    }
};

template <typename T>
class PoolPtr;

/**
 * Freelist of embedded-refcount slots for one object type.
 * Single-threaded; make() returns a PoolPtr that recycles the slot
 * when the last copy drops.
 *
 * Slot memory comes from the thread's FramePool rather than the
 * global heap: pools are short-lived (one per Transport, one
 * Transport per node per Machine, one Machine per sweep point), so
 * without the shared backing every fresh Machine would re-pay one
 * heap allocation per in-flight request.  Through the FramePool the
 * slots a destroyed Machine parks are the ones the next Machine's
 * pools pick up.
 */
template <typename T>
class Pool
{
  public:
    Pool() = default;
    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    ~Pool()
    {
        Slot *s = free_;
        while (s) {
            poolUnpoison(s, sizeof(Slot));
            Slot *next = getNext(s);
            framePool().release(s, sizeof(Slot));
            s = next;
        }
    }

    /** Construct a T in a recycled (or fresh) slot. */
    template <typename... A>
    PoolPtr<T>
    make(A &&...args)
    {
        static_assert(alignof(Slot) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                      "Slot must not be over-aligned: the FramePool "
                      "hands out default-aligned blocks");
        Slot *s = free_;
        if (s) {
            poolUnpoison(s, sizeof(Slot));
            free_ = getNext(s);
            ++counters_.reuses;
        } else {
            s = static_cast<Slot *>(framePool().allocate(sizeof(Slot)));
            ++counters_.allocs;
        }
        s->refs = 1;
        s->pool = this;
        ::new (static_cast<void *>(s->storage)) T(std::forward<A>(args)...);
        return PoolPtr<T>(s);
    }

    const PoolCounters &counters() const { return counters_; }

  private:
    friend class PoolPtr<T>;

    struct Slot
    {
        std::uint32_t refs = 0;
        Pool *pool = nullptr;
        alignas(T) unsigned char storage[sizeof(T) < sizeof(void *)
                                             ? sizeof(void *)
                                             : sizeof(T)];
    };

    // While parked, the first storage bytes hold the freelist link
    // (type-punned via memcpy: the T has been destroyed).
    static Slot *
    getNext(Slot *s)
    {
        Slot *n;
        std::memcpy(&n, s->storage, sizeof n);
        return n;
    }

    static void
    setNext(Slot *s, Slot *n)
    {
        std::memcpy(s->storage, &n, sizeof n);
    }

    static T *
    obj(Slot *s)
    {
        return std::launder(reinterpret_cast<T *>(s->storage));
    }

    void
    recycle(Slot *s) noexcept
    {
        obj(s)->~T();
        setNext(s, free_);
        free_ = s;
        poolPoison(s, sizeof(Slot));
        poolUnpoison(s->storage, sizeof(Slot *)); // keep the link live
    }

    Slot *free_ = nullptr;
    PoolCounters counters_;
};

/** Shared handle to a pooled object (single-threaded refcount). */
template <typename T>
class PoolPtr
{
  public:
    PoolPtr() = default;

    PoolPtr(const PoolPtr &o) noexcept : s_(o.s_)
    {
        if (s_)
            ++s_->refs;
    }

    PoolPtr(PoolPtr &&o) noexcept : s_(o.s_) { o.s_ = nullptr; }

    PoolPtr &
    operator=(const PoolPtr &o) noexcept
    {
        if (this != &o) {
            reset();
            s_ = o.s_;
            if (s_)
                ++s_->refs;
        }
        return *this;
    }

    PoolPtr &
    operator=(PoolPtr &&o) noexcept
    {
        if (this != &o) {
            reset();
            s_ = o.s_;
            o.s_ = nullptr;
        }
        return *this;
    }

    ~PoolPtr() { reset(); }

    void
    reset() noexcept
    {
        if (s_ && --s_->refs == 0)
            s_->pool->recycle(s_);
        s_ = nullptr;
    }

    T *get() const noexcept { return s_ ? Pool<T>::obj(s_) : nullptr; }
    T &operator*() const noexcept { return *Pool<T>::obj(s_); }
    T *operator->() const noexcept { return Pool<T>::obj(s_); }
    explicit operator bool() const noexcept { return s_ != nullptr; }

  private:
    friend class Pool<T>;

    explicit PoolPtr(typename Pool<T>::Slot *s) noexcept : s_(s) {}

    typename Pool<T>::Slot *s_ = nullptr;
};

} // namespace ccsim::sim

#endif // CCSIM_SIM_POOL_HH
