/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are (time, sequence, callback) triples kept in a calendar
 * queue: a window of fixed-width time buckets walked by a cursor,
 * with a spillover list for events beyond the window.  Scheduling
 * appends to a bucket unsorted in O(1); a bucket is sorted lazily,
 * once, when the cursor reaches it.  The sequence number makes
 * ordering *stable*: two events scheduled for the same simulated
 * instant fire in the order they were scheduled, which keeps runs
 * bit-reproducible regardless of queue internals.  (The previous
 * implementation was a binary heap; profiling showed sift-up/down
 * entry shuffling near the top of the sweep profile, and the
 * calendar layout turns the common schedule patterns — "resume at
 * now" and "deliver a short delay ahead" — into plain appends.)
 *
 * Ordering contract (pinned by the byte-identity determinism
 * suites): runNext() fires pending events in ascending (time, seq)
 * order, where seq is assignment order.  Scheduling before the last
 * fired time panics, so simulated time is monotone; the calendar
 * exploits that by never revisiting a bucket it has walked past
 * within a window.
 *
 * Callbacks are sim::SmallFn rather than std::function: the vast
 * majority capture a coroutine handle or a message plus a pointer
 * and are stored inline in the entry, so scheduling an event costs
 * no allocation.  Bucket storage itself comes from the thread-local
 * frame pool (PoolAlloc), so bucket growth after warm-up is a
 * freelist pop, not a malloc.
 */

#ifndef CCSIM_SIM_EVENT_QUEUE_HH
#define CCSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/pool.hh"
#include "sim/small_fn.hh"
#include "util/units.hh"

namespace ccsim::sim {

/** Stable-ordered time-sorted event queue (calendar queue). */
class EventQueue
{
  public:
    using Callback = SmallFn;

    EventQueue();

    /**
     * Enqueue a callback to fire at absolute time @p when.  Scheduling
     * in the past (before the last popped event's time) is a bug in
     * the caller and panics.
     */
    void schedule(Time when, Callback cb);

    /**
     * Enqueue a callback at the last fired time — the parked-coroutine
     * resume path.  Equivalent to schedule(lastFired(), cb) but skips
     * the cannot-be-in-the-past check by construction.
     */
    void scheduleNow(Callback cb);

    /**
     * Enqueue @p n callbacks all firing at @p when, in factory order
     * (@p make is called with 0..n-1 and returns each Callback).  One
     * capacity reservation covers the whole batch — the fan-out shape
     * collectives emit when a trigger releases many waiters at once.
     */
    template <typename MakeCb>
    void
    scheduleBatchAt(Time when, std::size_t n, MakeCb &&make)
    {
        reserveFor(when, n);
        for (std::size_t i = 0; i < n; ++i)
            schedule(when, make(i));
    }

    /**
     * Capacity hint: the caller expects up to @p events pending at
     * once.  Only effective while the queue is empty (the bucket
     * mapping cannot change mid-flight).
     */
    void reserve(std::size_t events);

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Time of the earliest pending event; queue must be non-empty. */
    Time nextTime() const;

    /**
     * Pop and run the earliest event.  Returns the time it fired at.
     * Queue must be non-empty.
     */
    Time runNext();

    /** Time of the most recently fired event (0 before any fire). */
    Time lastFired() const { return last_fired_; }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t fired() const { return fired_; }

    /** Largest number of simultaneously pending events ever seen. */
    std::size_t maxDepth() const { return max_depth_; }

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Bucket storage draws from the thread-local frame pool. */
    using Bucket = std::vector<Entry, PoolAlloc<Entry>>;

    /** True when @p a fires strictly before @p b. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** Bucket index of @p when; entries before the window origin
     *  clamp to bucket 0 (they sort first inside it anyway). */
    std::size_t
    bucketOf(Time when) const
    {
        if (when <= origin_)
            return 0;
        return static_cast<std::size_t>((when - origin_) >> width_bits_);
    }

    void insert(Entry e);
    void insertSortedCur(Entry e);
    void ensureSortedCur();
    void settle();
    void advanceWindow();
    void reserveFor(Time when, std::size_t n);

    std::vector<Bucket> buckets_;
    std::vector<unsigned char> sorted_; //!< per-bucket "is sorted" flag
    Bucket overflow_;                   //!< events beyond the window
    std::size_t nb_ = 0;                //!< bucket count (power of two)
    int width_bits_ = 18;               //!< log2 bucket width (ps)
    Time origin_ = 0;                   //!< window start time
    std::size_t cur_ = 0;               //!< cursor bucket
    std::size_t pos_ = 0;               //!< consumed prefix of cur_
    std::size_t size_ = 0;

    std::uint64_t next_seq_ = 0;
    std::uint64_t fired_ = 0;
    std::size_t max_depth_ = 0;
    Time last_fired_ = 0;
};

} // namespace ccsim::sim

#endif // CCSIM_SIM_EVENT_QUEUE_HH
