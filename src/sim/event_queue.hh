/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are (time, sequence, callback) triples kept in a binary
 * heap.  The sequence number makes ordering *stable*: two events
 * scheduled for the same simulated instant fire in the order they
 * were scheduled, which keeps runs bit-reproducible regardless of
 * heap internals.
 *
 * Callbacks are sim::SmallFn rather than std::function: the vast
 * majority capture a coroutine handle or a couple of pointers and
 * are stored inline in the heap entry, so scheduling an event costs
 * no allocation.  The heap is hand-rolled (not std::priority_queue)
 * because pop must *move* the callback out, and priority_queue only
 * exposes a const top().
 */

#ifndef CCSIM_SIM_EVENT_QUEUE_HH
#define CCSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/small_fn.hh"
#include "util/units.hh"

namespace ccsim::sim {

/** Stable-ordered time-sorted event queue. */
class EventQueue
{
  public:
    using Callback = SmallFn;

    /**
     * Enqueue a callback to fire at absolute time @p when.  Scheduling
     * in the past (before the last popped event's time) is a bug in
     * the caller and panics.
     */
    void schedule(Time when, Callback cb);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event; queue must be non-empty. */
    Time nextTime() const;

    /**
     * Pop and run the earliest event.  Returns the time it fired at.
     * Queue must be non-empty.
     */
    Time runNext();

    /** Time of the most recently fired event (0 before any fire). */
    Time lastFired() const { return last_fired_; }

    /** Total events executed over the queue's lifetime. */
    std::uint64_t fired() const { return fired_; }

    /** Largest number of simultaneously pending events ever seen. */
    std::size_t maxDepth() const { return max_depth_; }

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq;
        Callback cb;
    };

    /** True when @p a fires strictly before @p b. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    std::vector<Entry> heap_; //!< min-heap ordered by earlier()
    std::uint64_t next_seq_ = 0;
    std::uint64_t fired_ = 0;
    std::size_t max_depth_ = 0;
    Time last_fired_ = 0;
};

} // namespace ccsim::sim

#endif // CCSIM_SIM_EVENT_QUEUE_HH
