#include "sim/trace.hh"

#include "util/logging.hh"

namespace ccsim::sim {

std::string
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::Compute:
        return "compute";
      case SpanKind::Send:
        return "send";
      case SpanKind::Recv:
        return "recv";
      default:
        panic("spanKindName: bad kind %d", static_cast<int>(k));
    }
}

void
Trace::record(const Span &s)
{
    if (!enabled_)
        return;
    if (s.end < s.start)
        panic("Trace::record: span ends (%lld) before it starts (%lld)",
              static_cast<long long>(s.end),
              static_cast<long long>(s.start));
    // A traced collective records thousands of spans; grab a big
    // block up front so the hot path never reallocates early and
    // often.
    if (spans_.capacity() == spans_.size())
        spans_.reserve(spans_.empty() ? 4096 : 2 * spans_.size());
    spans_.push_back(s);
    Span &sp = spans_.back();
    if (sp.label.empty() && sp.rank >= 0 &&
        static_cast<std::size_t>(sp.rank) < phase_.size())
        sp.label = phase_[static_cast<std::size_t>(sp.rank)];
}

void
Trace::recordCounter(Time when, const std::string &name, double value)
{
    if (!enabled_)
        return;
    counters_.push_back(CounterSample{when, name, value});
}

void
Trace::setPhase(int rank, std::string label)
{
    if (!enabled_ || rank < 0)
        return;
    if (static_cast<std::size_t>(rank) >= phase_.size())
        phase_.resize(static_cast<std::size_t>(rank) + 1);
    phase_[static_cast<std::size_t>(rank)] = std::move(label);
}

void
Trace::writeChromeJson(std::ostream &os) const
{
    os << "[";
    bool first = true;
    for (const Span &s : spans_) {
        if (!first)
            os << ",";
        first = false;
        const std::string &name =
            s.label.empty() ? spanKindName(s.kind) : s.label;
        os << "\n  {\"name\": \"" << name << "\""
           << ", \"ph\": \"X\""
           << ", \"ts\": " << toMicros(s.start)
           << ", \"dur\": " << toMicros(s.duration())
           << ", \"pid\": 0"
           << ", \"tid\": " << s.rank << ", \"args\": {\"kind\": \""
           << spanKindName(s.kind) << "\", \"bytes\": " << s.bytes
           << ", \"peer\": " << s.peer << "}}";
    }
    for (const CounterSample &c : counters_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\": \"" << c.name << "\""
           << ", \"ph\": \"C\""
           << ", \"ts\": " << toMicros(c.when)
           << ", \"pid\": 0"
           << ", \"args\": {\"value\": " << c.value << "}}";
    }
    os << "\n]\n";
}

void
Trace::writeCsv(std::ostream &os) const
{
    os << "rank,kind,start_us,end_us,bytes,peer,label\n";
    for (const Span &s : spans_) {
        os << s.rank << ',' << spanKindName(s.kind) << ','
           << toMicros(s.start) << ',' << toMicros(s.end) << ','
           << s.bytes << ',' << s.peer << ',' << s.label << '\n';
    }
}

std::map<int, RankSummary>
Trace::summarize() const
{
    std::map<int, RankSummary> out;
    for (const Span &s : spans_) {
        RankSummary &r = out[s.rank];
        ++r.spans;
        switch (s.kind) {
          case SpanKind::Compute:
            r.compute += s.duration();
            break;
          case SpanKind::Send:
            r.send += s.duration();
            break;
          case SpanKind::Recv:
            r.recv += s.duration();
            break;
        }
    }
    return out;
}

} // namespace ccsim::sim
