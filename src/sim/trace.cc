#include "sim/trace.hh"

#include "util/logging.hh"

namespace ccsim::sim {

std::string
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::Compute:
        return "compute";
      case SpanKind::Send:
        return "send";
      case SpanKind::Recv:
        return "recv";
      default:
        panic("spanKindName: bad kind %d", static_cast<int>(k));
    }
}

void
Trace::record(const Span &s)
{
    if (!enabled_)
        return;
    if (s.end < s.start)
        panic("Trace::record: span ends (%lld) before it starts (%lld)",
              static_cast<long long>(s.end),
              static_cast<long long>(s.start));
    spans_.push_back(s);
}

void
Trace::writeChromeJson(std::ostream &os) const
{
    os << "[";
    bool first = true;
    for (const Span &s : spans_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\": \"" << spanKindName(s.kind) << "\""
           << ", \"ph\": \"X\""
           << ", \"ts\": " << toMicros(s.start)
           << ", \"dur\": " << toMicros(s.duration())
           << ", \"pid\": 0"
           << ", \"tid\": " << s.rank << ", \"args\": {\"bytes\": "
           << s.bytes << ", \"peer\": " << s.peer << "}}";
    }
    os << "\n]\n";
}

void
Trace::writeCsv(std::ostream &os) const
{
    os << "rank,kind,start_us,end_us,bytes,peer\n";
    for (const Span &s : spans_) {
        os << s.rank << ',' << spanKindName(s.kind) << ','
           << toMicros(s.start) << ',' << toMicros(s.end) << ','
           << s.bytes << ',' << s.peer << '\n';
    }
}

std::map<int, RankSummary>
Trace::summarize() const
{
    std::map<int, RankSummary> out;
    for (const Span &s : spans_) {
        RankSummary &r = out[s.rank];
        ++r.spans;
        switch (s.kind) {
          case SpanKind::Compute:
            r.compute += s.duration();
            break;
          case SpanKind::Send:
            r.send += s.duration();
            break;
          case SpanKind::Recv:
            r.recv += s.duration();
            break;
        }
    }
    return out;
}

} // namespace ccsim::sim
