#include "sim/event_queue.hh"

#include <utility>

#include "util/logging.hh"

namespace ccsim::sim {

void
EventQueue::schedule(Time when, Callback cb)
{
    if (when < last_fired_)
        panic("EventQueue::schedule: time %lld before current time %lld",
              static_cast<long long>(when),
              static_cast<long long>(last_fired_));
    if (!cb)
        panic("EventQueue::schedule: empty callback");
    heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

Time
EventQueue::nextTime() const
{
    if (heap_.empty())
        panic("EventQueue::nextTime: queue is empty");
    return heap_.top().when;
}

Time
EventQueue::runNext()
{
    if (heap_.empty())
        panic("EventQueue::runNext: queue is empty");
    // priority_queue::top() is const; the callback must be moved out
    // before pop, so copy the entry (callbacks are cheap to move but
    // top() only gives const access — use const_cast-free approach).
    Entry e = heap_.top();
    heap_.pop();
    last_fired_ = e.when;
    ++fired_;
    e.cb();
    return e.when;
}

} // namespace ccsim::sim
