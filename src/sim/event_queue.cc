#include "sim/event_queue.hh"

#include <utility>

#include "util/logging.hh"

namespace ccsim::sim {

void
EventQueue::schedule(Time when, Callback cb)
{
    if (when < last_fired_)
        panic("EventQueue::schedule: time %lld before current time %lld",
              static_cast<long long>(when),
              static_cast<long long>(last_fired_));
    if (!cb)
        panic("EventQueue::schedule: empty callback");
    heap_.push_back(Entry{when, next_seq_++, std::move(cb)});
    if (heap_.size() > max_depth_)
        max_depth_ = heap_.size();
    siftUp(heap_.size() - 1);
}

Time
EventQueue::nextTime() const
{
    if (heap_.empty())
        panic("EventQueue::nextTime: queue is empty");
    return heap_.front().when;
}

Time
EventQueue::runNext()
{
    if (heap_.empty())
        panic("EventQueue::runNext: queue is empty");
    // Move the earliest entry out and restore the heap *before*
    // invoking the callback — callbacks routinely schedule new
    // events.
    Entry e = std::move(heap_.front());
    if (heap_.size() > 1) {
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        siftDown(0);
    } else {
        heap_.pop_back();
    }
    last_fired_ = e.when;
    ++fired_;
    e.cb();
    return e.when;
}

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t smallest = i;
        std::size_t left = 2 * i + 1;
        std::size_t right = 2 * i + 2;
        if (left < n && earlier(heap_[left], heap_[smallest]))
            smallest = left;
        if (right < n && earlier(heap_[right], heap_[smallest]))
            smallest = right;
        if (smallest == i)
            return;
        std::swap(heap_[i], heap_[smallest]);
        i = smallest;
    }
}

} // namespace ccsim::sim
