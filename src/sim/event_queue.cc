#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace ccsim::sim {

namespace {

/** Smallest power of two >= @p n (n >= 1). */
std::size_t
pow2AtLeast(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

EventQueue::EventQueue()
{
    nb_ = 64;
    buckets_.resize(nb_);
    sorted_.assign(nb_, 1);
}

void
EventQueue::reserve(std::size_t events)
{
    if (size_ == 0 && events / 4 + 1 > nb_) {
        nb_ = std::min<std::size_t>(pow2AtLeast(events / 4 + 1), 1024);
        buckets_.resize(nb_);
        sorted_.assign(nb_, 1);
        cur_ = 0;
        pos_ = 0;
    }
    overflow_.reserve(events / 4);
}

void
EventQueue::schedule(Time when, Callback cb)
{
    if (when < last_fired_)
        panic("EventQueue::schedule: time %lld before current time %lld",
              static_cast<long long>(when),
              static_cast<long long>(last_fired_));
    if (!cb)
        panic("EventQueue::schedule: empty callback");
    insert(Entry{when, next_seq_++, std::move(cb)});
}

void
EventQueue::scheduleNow(Callback cb)
{
    if (!cb)
        panic("EventQueue::scheduleNow: empty callback");
    insert(Entry{last_fired_, next_seq_++, std::move(cb)});
}

void
EventQueue::insert(Entry e)
{
    if (size_ == 0) {
        // Empty queue: re-anchor the window at this event, bucket 0.
        // All buckets are empty here (the last pop clears its bucket).
        origin_ = e.when;
        cur_ = 0;
        pos_ = 0;
        buckets_[0].push_back(std::move(e));
        sorted_[0] = 1;
    } else {
        std::size_t b = bucketOf(e.when);
        if (b >= nb_) {
            overflow_.push_back(std::move(e));
        } else if (b == cur_) {
            Bucket &bk = buckets_[cur_];
            if (pos_ == 0) {
                // Nothing consumed from this bucket yet: a plain
                // append suffices, sorting is deferred to first
                // access.  In-order arrivals keep the flag set so
                // the deferred sort is usually skipped entirely.
                if (sorted_[cur_] && !bk.empty() &&
                    earlier(e, bk.back()))
                    sorted_[cur_] = 0;
                bk.push_back(std::move(e));
            } else {
                // Mid-consumption the bucket is sorted past pos_;
                // keep it that way.
                insertSortedCur(std::move(e));
            }
        } else if (b > cur_) {
            Bucket &bk = buckets_[b];
            bk.push_back(std::move(e));
            if (bk.size() > 1)
                sorted_[b] = 0;
        } else {
            // Earlier than the cursor's bucket.  Possible only when
            // nothing has been consumed from the cursor bucket yet
            // (events fired from it would have advanced last_fired_
            // past this one), so pos_ is 0 and walking the cursor
            // back is safe: every bucket in [b, cur_) is empty.
            cur_ = b;
            pos_ = 0;
            buckets_[b].push_back(std::move(e));
            sorted_[b] = 1;
        }
    }
    ++size_;
    if (size_ > max_depth_)
        max_depth_ = size_;
}

void
EventQueue::insertSortedCur(Entry e)
{
    // The cursor bucket is always sorted past its consumed prefix;
    // keep it that way.  Same-instant entries carry the largest seq
    // so the common "resume at now" case appends at the tail.
    Bucket &bk = buckets_[cur_];
    auto it = std::upper_bound(
        bk.begin() + static_cast<std::ptrdiff_t>(pos_), bk.end(), e,
        [](const Entry &a, const Entry &b) { return earlier(a, b); });
    bk.insert(it, std::move(e));
}

void
EventQueue::reserveFor(Time when, std::size_t n)
{
    if (size_ == 0)
        return;
    std::size_t b = bucketOf(when);
    Bucket &bk = b >= nb_ ? overflow_ : buckets_[b];
    bk.reserve(bk.size() + n);
}

Time
EventQueue::nextTime() const
{
    if (size_ == 0)
        panic("EventQueue::nextTime: queue is empty");
    // The cursor bucket holds the earliest pending entry but may not
    // have been sorted yet (that happens on first pop); peek without
    // mutating.
    const Bucket &bk = buckets_[cur_];
    if (sorted_[cur_])
        return bk[pos_].when;
    auto it = std::min_element(
        bk.begin(), bk.end(),
        [](const Entry &a, const Entry &b) { return earlier(a, b); });
    return it->when;
}

void
EventQueue::ensureSortedCur()
{
    if (sorted_[cur_])
        return;
    // An unsorted cursor bucket has no consumed prefix (consumption
    // sorts first), so the whole bucket is fair game.
    Bucket &bk = buckets_[cur_];
    std::sort(bk.begin(), bk.end(),
              [](const Entry &a, const Entry &b) { return earlier(a, b); });
    sorted_[cur_] = 1;
}

Time
EventQueue::runNext()
{
    if (size_ == 0)
        panic("EventQueue::runNext: queue is empty");
    ensureSortedCur();
    // Move the earliest entry out and restore the cursor invariant
    // *before* invoking the callback — callbacks routinely schedule
    // new events.
    Entry e = std::move(buckets_[cur_][pos_]);
    ++pos_;
    --size_;
    last_fired_ = e.when;
    ++fired_;
    if (size_ == 0) {
        buckets_[cur_].clear();
        sorted_[cur_] = 1;
        pos_ = 0;
    } else {
        settle();
    }
    e.cb();
    return e.when;
}

void
EventQueue::settle()
{
    // Post-condition (size_ > 0): buckets_[cur_] holds the earliest
    // pending entries (sorting is deferred to first access).
    for (;;) {
        Bucket &bk = buckets_[cur_];
        if (pos_ < bk.size())
            return;
        bk.clear();
        sorted_[cur_] = 1;
        pos_ = 0;
        if (++cur_ == nb_)
            advanceWindow();
    }
}

void
EventQueue::advanceWindow()
{
    origin_ += static_cast<Time>(nb_) << width_bits_;
    cur_ = 0;
    if (overflow_.empty())
        return;

    // All in-window buckets are empty here, so the window can be
    // re-anchored and re-scaled freely.  Jump the origin straight to
    // the earliest spillover event — overflow times are never below
    // the advanced origin, and later schedules before a jumped
    // origin clamp to bucket 0, which sorts first — and, when the
    // spillover population is dense enough to sample, re-fit the
    // bucket width so the whole span lands inside one window.
    // Without the re-fit a long-horizon machine (SP2's ~100 us
    // software rounds against the default ~17 us window) would pay a
    // full overflow scan per window step instead of ingesting each
    // event exactly once.
    Time min_when = overflow_[0].when;
    Time max_when = min_when;
    for (const Entry &e : overflow_) {
        min_when = std::min(min_when, e.when);
        max_when = std::max(max_when, e.when);
    }
    origin_ = min_when;
    if (overflow_.size() >= 64) {
        Time span = max_when - min_when;
        Time per = span / static_cast<Time>(nb_ / 2) + 1;
        int bits = 4;
        while ((Time(1) << bits) < per && bits < 44)
            ++bits;
        width_bits_ = bits;
    }

    std::size_t keep = 0;
    for (Entry &e : overflow_) {
        std::size_t b = bucketOf(e.when);
        if (b < nb_) {
            Bucket &bk = buckets_[b];
            bk.push_back(std::move(e));
            if (bk.size() > 1)
                sorted_[b] = 0;
        } else {
            overflow_[keep++] = std::move(e);
        }
    }
    overflow_.resize(keep);
}

} // namespace ccsim::sim
