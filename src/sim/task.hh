/**
 * @file
 * Task<T>: the lazy coroutine type all simulated programs are written
 * in.
 *
 * A Task is created suspended; awaiting it starts the child via
 * symmetric transfer, and when the child finishes its final awaiter
 * transfers control straight back to the awaiting parent.  Exceptions
 * thrown inside a task are captured and rethrown from the parent's
 * co_await.  Tasks are move-only and own their coroutine frame.
 *
 * Rank programs block by co_awaiting primitives (delays, message
 * arrivals, barrier releases) that park the coroutine handle and
 * resume it from a scheduled simulator event, so "time passes" for a
 * program exactly when the event queue says it does.
 */

#ifndef CCSIM_SIM_TASK_HH
#define CCSIM_SIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "sim/pool.hh"
#include "util/logging.hh"

namespace ccsim::sim {

template <typename T>
class Task;

namespace detail {

/** State shared by Task promises independent of the result type. */
struct PromiseBase
{
    /**
     * Coroutine frames come from the thread-local FramePool: rank
     * programs create and destroy frames at the highest rate of
     * anything in the simulator, and only a handful of distinct
     * frame sizes exist, so a size-class freelist turns frame churn
     * into pointer pops.  Only the sized delete is defined — the
     * coroutine machinery prefers it when both are visible, and the
     * pool needs the size to find the class.
     */
    static void *
    operator new(std::size_t n)
    {
        return framePool().allocate(n);
    }

    static void
    operator delete(void *p, std::size_t n) noexcept
    {
        framePool().release(p, n);
    }

    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) const noexcept
        {
            auto &p = h.promise();
            if (p.continuation)
                return p.continuation;
            return std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }

    void unhandled_exception() { exception = std::current_exception(); }
};

} // namespace detail

/**
 * A lazily-started coroutine returning a value of type T (or void).
 */
template <typename T>
class Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        template <typename U>
        void
        return_value(U &&v)
        {
            value.emplace(std::forward<U>(v));
        }
    };

    Task() = default;

    Task(Task &&other) noexcept : handle_(other.handle_)
    {
        other.handle_ = nullptr;
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = other.handle_;
            other.handle_ = nullptr;
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True when this Task owns a coroutine frame. */
    bool valid() const { return handle_ != nullptr; }

    /** True once the coroutine has run to completion. */
    bool done() const { return handle_ && handle_.done(); }

    struct Awaiter
    {
        std::coroutine_handle<promise_type> handle;

        bool await_ready() const noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) const noexcept
        {
            handle.promise().continuation = parent;
            return handle; // start the child
        }

        T
        await_resume() const
        {
            auto &p = handle.promise();
            if (p.exception)
                std::rethrow_exception(p.exception);
            return std::move(*p.value);
        }
    };

    Awaiter
    operator co_await() &&
    {
        if (!handle_)
            panic("co_await on an empty Task");
        return Awaiter{handle_};
    }

    /** Raw handle access for the spawning machinery. */
    std::coroutine_handle<promise_type> handle() const { return handle_; }

  private:
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

/** Specialization for coroutines that produce no value. */
template <>
class Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() const noexcept {}
    };

    Task() = default;

    Task(Task &&other) noexcept : handle_(other.handle_)
    {
        other.handle_ = nullptr;
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = other.handle_;
            other.handle_ = nullptr;
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }
    bool done() const { return handle_ && handle_.done(); }

    struct Awaiter
    {
        std::coroutine_handle<promise_type> handle;

        bool await_ready() const noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) const noexcept
        {
            handle.promise().continuation = parent;
            return handle;
        }

        void
        await_resume() const
        {
            auto &p = handle.promise();
            if (p.exception)
                std::rethrow_exception(p.exception);
        }
    };

    Awaiter
    operator co_await() &&
    {
        if (!handle_)
            panic("co_await on an empty Task");
        return Awaiter{handle_};
    }

    std::coroutine_handle<promise_type> handle() const { return handle_; }

  private:
    friend class Simulator;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

} // namespace ccsim::sim

#endif // CCSIM_SIM_TASK_HH
