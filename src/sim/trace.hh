/**
 * @file
 * Execution tracing: per-rank activity spans for timeline analysis.
 *
 * When enabled on a Machine, the transport records one span per
 * software activity (send issue, receive completion, CPU busy time)
 * with start/end simulated times, byte counts, and peers.  Traces
 * export to the Chrome trace-event JSON format (load in
 * chrome://tracing or Perfetto to see the ladder diagrams of a
 * collective) or to CSV, and summarize into per-rank compute /
 * communication totals — the sort of breakdown Fig. 4 of the paper
 * presents as stacked bars.
 *
 * Tracing is off by default and costs nothing when disabled.
 */

#ifndef CCSIM_SIM_TRACE_HH
#define CCSIM_SIM_TRACE_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/units.hh"

namespace ccsim::sim {

/** What a span represents. */
enum class SpanKind
{
    Compute, //!< CPU busy (software overheads, arithmetic)
    Send,    //!< send issue, call to local completion
    Recv,    //!< receive, call to completion
};

/** Printable span kind. */
std::string spanKindName(SpanKind k);

/** One recorded activity interval. */
struct Span
{
    int rank = 0;
    SpanKind kind = SpanKind::Compute;
    Time start = 0;
    Time end = 0;
    Bytes bytes = 0;
    int peer = -1;     //!< other endpoint (-1: none)
    std::string label; //!< optional phase/collective name

    Time duration() const { return end - start; }
};

/** One sampled counter value (Chrome trace "C" event). */
struct CounterSample
{
    Time when = 0;
    std::string name;
    double value = 0.0;
};

/** Per-rank activity totals. */
struct RankSummary
{
    Time compute = 0;
    Time send = 0;
    Time recv = 0;
    int spans = 0;

    Time comm() const { return send + recv; }
};

/** Span collector with export and summary. */
class Trace
{
  public:
    /** Turn recording on/off (off by default). */
    void enable(bool on) { enabled_ = on; }

    /** True while recording. */
    bool enabled() const { return enabled_; }

    /** Record a span (no-op while disabled).  Spans with an empty
     *  label inherit the recording rank's current phase label. */
    void record(const Span &s);

    /**
     * Set the phase label stamped onto subsequent spans of @p rank
     * (the replay engine labels each action — "alltoall", "halo
     * exchange" — so timelines read at collective granularity in
     * Perfetto).  An empty @p label clears it.  No-op while disabled.
     */
    void setPhase(int rank, std::string label);

    /** All recorded spans, in recording order. */
    const std::vector<Span> &spans() const { return spans_; }

    /**
     * Sample a named counter at simulated time @p when (no-op while
     * disabled).  The metrics layer samples machine-wide totals at
     * collective boundaries, so timelines show e.g.\ network bytes
     * and stall time climbing alongside the activity spans.
     */
    void recordCounter(Time when, const std::string &name, double value);

    /** All recorded counter samples, in recording order. */
    const std::vector<CounterSample> &counters() const
    {
        return counters_;
    }

    /** Drop all recorded spans, counters, and phase labels. */
    void
    clear()
    {
        spans_.clear();
        counters_.clear();
        phase_.clear();
    }

    /** Chrome trace-event JSON (complete "X" events; ts/dur in us;
     *  tid = rank; labelled spans use the label as the event name,
     *  with the kind preserved in args; counter samples become "C"
     *  events on pid 0). */
    void writeChromeJson(std::ostream &os) const;

    /** CSV: rank,kind,start_us,end_us,bytes,peer,label. */
    void writeCsv(std::ostream &os) const;

    /** Aggregate per-rank totals. */
    std::map<int, RankSummary> summarize() const;

  private:
    bool enabled_ = false;
    std::vector<Span> spans_;
    std::vector<CounterSample> counters_;
    std::vector<std::string> phase_; //!< per-rank current label
};

} // namespace ccsim::sim

#endif // CCSIM_SIM_TRACE_HH
