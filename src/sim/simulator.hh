/**
 * @file
 * The Simulator: event loop, coroutine spawning, and the blocking
 * primitives rank programs co_await.
 *
 * Usage:
 * @code
 *     sim::Simulator s;
 *     s.spawn(myProgram(s));
 *     s.run();                     // drains the event queue
 * @endcode
 *
 * Spawned tasks run until they block; "blocking" means parking the
 * coroutine handle and scheduling its resumption from an event.  If
 * the queue drains while spawned tasks are still incomplete, the run
 * is deadlocked (e.g. a receive nobody will ever match) and run()
 * panics.
 */

#ifndef CCSIM_SIM_SIMULATOR_HH
#define CCSIM_SIM_SIMULATOR_HH

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace ccsim::sim {

class Simulator;

/** Awaitable that resumes the caller after a fixed simulated delay. */
class DelayAwaiter
{
  public:
    DelayAwaiter(Simulator &sim, Time d) : sim_(sim), delay_(d) {}

    bool await_ready() const noexcept { return delay_ == 0; }
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}

  private:
    Simulator &sim_;
    Time delay_;
};

/**
 * Awaitable built from a callable that receives the suspended
 * coroutine handle; the callable is responsible for arranging the
 * handle's eventual resumption (via Simulator::resumeAt /
 * resumeNow).  This is the hook the messaging layer uses to park a
 * receiver until a matching message arrives.
 */
template <typename F>
class SuspendWith
{
  public:
    explicit SuspendWith(F f) : f_(std::move(f)) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { f_(h); }
    void await_resume() const noexcept {}

  private:
    F f_;
};

template <typename F>
SuspendWith<F>
suspendWith(F f)
{
    return SuspendWith<F>(std::move(f));
}

/**
 * One-shot broadcast trigger.  Coroutines co_await wait(); fire()
 * releases all current and future waiters (awaiting a fired trigger
 * completes immediately).  Used for rendezvous handshakes and the
 * hardwired barrier service.
 */
class Trigger
{
  public:
    explicit Trigger(Simulator &sim) : sim_(sim) {}

    Trigger(const Trigger &) = delete;
    Trigger &operator=(const Trigger &) = delete;

    /** True once fire() has been called. */
    bool fired() const { return fired_; }

    /** Release all waiters (resumed via the event queue at now). */
    void fire();

    class Awaiter
    {
      public:
        explicit Awaiter(Trigger &t) : trigger_(t) {}

        bool await_ready() const noexcept { return trigger_.fired_; }
        void await_suspend(std::coroutine_handle<> h);
        void await_resume() const noexcept {}

      private:
        Trigger &trigger_;
    };

    /** Awaitable that completes when (or immediately after) fire(). */
    Awaiter wait() { return Awaiter(*this); }

  private:
    friend class Awaiter;

    Simulator &sim_;
    bool fired_ = false;
    /** Inline slot for the overwhelmingly common single waiter
     *  (request completion, rendezvous CTS/DATA); only a broadcast
     *  fan-out (hardware barrier) spills into the vector, whose
     *  storage is pooled. */
    std::coroutine_handle<> first_ = nullptr;
    std::vector<std::coroutine_handle<>,
                PoolAlloc<std::coroutine_handle<>>>
        spill_;
};

/** Event loop + task lifetime management. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Time now() const { return queue_.lastFired(); }

    /** The underlying event queue. */
    EventQueue &queue() { return queue_; }

    /** Schedule a callback @p delay after now. */
    void
    schedule(Time delay, EventQueue::Callback cb)
    {
        queue_.schedule(now() + delay, std::move(cb));
    }

    /** Schedule a callback at absolute time @p when. */
    void
    scheduleAt(Time when, EventQueue::Callback cb)
    {
        queue_.schedule(when, std::move(cb));
    }

    /** Resume a parked coroutine at absolute time @p when. */
    void
    resumeAt(Time when, std::coroutine_handle<> h)
    {
        queue_.schedule(when, [h] { h.resume(); });
    }

    /** Resume a parked coroutine at the current time (via the queue,
     *  so ordering against other now-events stays stable).  Uses the
     *  queue's append-at-now fast path rather than re-deriving now()
     *  and re-checking it against itself. */
    void
    resumeNow(std::coroutine_handle<> h)
    {
        queue_.scheduleNow([h] { h.resume(); });
    }

    /** Awaitable: suspend the caller for @p d simulated time. */
    DelayAwaiter delay(Time d) { return DelayAwaiter(*this, d); }

    /**
     * Root a task into the simulator.  The task starts running at the
     * current time (it executes until its first block immediately).
     */
    void spawn(Task<void> task);

    /**
     * Run until the event queue drains.  Panics on deadlock (tasks
     * still pending with an empty queue) and rethrows the first
     * exception escaping any spawned task.
     */
    void run();

    /** Number of spawned tasks that have not yet completed. */
    std::size_t pendingTasks() const;

    /** Total events executed. */
    std::uint64_t eventsFired() const { return queue_.fired(); }

    /** Total tasks ever spawned (completed ones included). */
    std::uint64_t tasksSpawned() const { return tasks_spawned_; }

    /**
     * Safety valve: panic if a single run() executes more than this
     * many events (runaway-loop guard).  Zero disables the check.
     */
    void setEventLimit(std::uint64_t limit) { event_limit_ = limit; }

  private:
    struct Root
    {
        Task<void> task;
    };

    EventQueue queue_;
    std::vector<Root> roots_;
    std::exception_ptr pending_exception_;
    std::uint64_t event_limit_ = 0;
    std::uint64_t tasks_spawned_ = 0;
};

} // namespace ccsim::sim

#endif // CCSIM_SIM_SIMULATOR_HH
