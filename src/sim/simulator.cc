#include "sim/simulator.hh"

#include "util/logging.hh"

namespace ccsim::sim {

void
DelayAwaiter::await_suspend(std::coroutine_handle<> h) const
{
    if (delay_ < 0)
        panic("delay: negative duration %lld",
              static_cast<long long>(delay_));
    sim_.resumeAt(sim_.now() + delay_, h);
}

void
Trigger::fire()
{
    if (fired_)
        return;
    fired_ = true;
    if (first_) {
        sim_.resumeNow(first_);
        first_ = nullptr;
    }
    if (!spill_.empty()) {
        // Broadcast release: one batched reservation for the whole
        // fan-out instead of per-waiter queue growth.
        sim_.queue().scheduleBatchAt(
            sim_.now(), spill_.size(), [this](std::size_t i) {
                auto h = spill_[i];
                return EventQueue::Callback([h] { h.resume(); });
            });
        spill_.clear();
    }
}

void
Trigger::Awaiter::await_suspend(std::coroutine_handle<> h)
{
    if (!trigger_.first_ && trigger_.spill_.empty())
        trigger_.first_ = h;
    else
        trigger_.spill_.push_back(h);
}

void
Simulator::spawn(Task<void> task)
{
    if (!task.valid())
        panic("Simulator::spawn: empty task");
    auto handle = task.handle();
    roots_.push_back(Root{std::move(task)});
    ++tasks_spawned_;
    // Start the lazily-created coroutine; it runs until its first
    // blocking point.
    handle.resume();
}

void
Simulator::run()
{
    while (!queue_.empty()) {
        queue_.runNext();
        if (event_limit_ && queue_.fired() > event_limit_)
            panic("Simulator::run: event limit %llu exceeded",
                  static_cast<unsigned long long>(event_limit_));
    }

    // Surface the first task failure before diagnosing deadlock: a
    // dead rank usually strands its peers, and the root cause is the
    // exception, not the resulting starvation.
    for (auto &r : roots_) {
        auto &p = r.task.handle().promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
    }

    std::size_t stuck = pendingTasks();
    if (stuck > 0)
        panic("Simulator::run: deadlock, %zu task(s) blocked with an "
              "empty event queue", stuck);

    roots_.clear();
}

std::size_t
Simulator::pendingTasks() const
{
    std::size_t n = 0;
    for (const auto &r : roots_)
        if (!r.task.done())
            ++n;
    return n;
}

} // namespace ccsim::sim
