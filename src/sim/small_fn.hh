/**
 * @file
 * BasicSmallFn: a move-only `void(Args...)` callable with
 * small-buffer optimisation; SmallFn is the nullary flavour used for
 * event-queue callbacks, DeliverFn the `void(Time)` flavour the
 * transport's wire layer uses.
 *
 * The simulator schedules millions of tiny callbacks per run — most
 * capture a coroutine handle (8 bytes) or a message plus a pointer.
 * std::function heap-allocates many of them and, worse,
 * std::priority_queue forces a *copy* on pop.  BasicSmallFn stores
 * any nothrow-movable callable of up to kInlineBytes in place (no
 * allocation, trivially relocated when event storage grows) and
 * falls back to the heap only for oversized or throwing-move
 * callables.  Unlike std::function it is move-only, so move-capturing
 * lambdas (e.g.\ a message moved into its delivery event) need no
 * copyable workaround.
 */

#ifndef CCSIM_SIM_SMALL_FN_HH
#define CCSIM_SIM_SMALL_FN_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/units.hh"

namespace ccsim::sim {

/** Move-only void(Args...) callable with small-buffer optimisation.
 *  Arguments are passed by value and should be trivially copyable
 *  (times, handles, small ids). */
template <typename... Args>
class BasicSmallFn
{
  public:
    /** Callables at most this large (and nothrow-movable) are stored
     *  inline, with no heap allocation.  64 bytes fits the largest
     *  hot callback — an eager-delivery lambda capturing a Message
     *  and its destination endpoint. */
    static constexpr std::size_t kInlineBytes = 64;

    BasicSmallFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, BasicSmallFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &, Args...>>>
    BasicSmallFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            auto *heap = new Fn(std::forward<F>(f));
            ::new (static_cast<void *>(storage_)) Fn *(heap);
            ops_ = &heapOps<Fn>;
        }
    }

    BasicSmallFn(BasicSmallFn &&other) noexcept { moveFrom(other); }

    BasicSmallFn &
    operator=(BasicSmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    BasicSmallFn(const BasicSmallFn &) = delete;
    BasicSmallFn &operator=(const BasicSmallFn &) = delete;

    ~BasicSmallFn() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke the held callable (must be non-empty). */
    void operator()(Args... args) { ops_->invoke(storage_, args...); }

    /** True when the held callable lives in the inline buffer (for
     *  tests and allocation accounting). */
    bool inlined() const noexcept { return ops_ && ops_->inlined; }

  private:
    struct Ops
    {
        void (*invoke)(void *, Args...);
        /** Move-construct *dst from *src, then destroy *src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool inlined;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s, Args... args) {
            (*std::launder(reinterpret_cast<Fn *>(s)))(args...);
        },
        [](void *dst, void *src) noexcept {
            Fn *from = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void *s) noexcept {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
        true,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s, Args... args) {
            (**std::launder(reinterpret_cast<Fn **>(s)))(args...);
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn *(*std::launder(reinterpret_cast<Fn **>(src)));
        },
        [](void *s) noexcept {
            delete *std::launder(reinterpret_cast<Fn **>(s));
        },
        false,
    };

    void
    moveFrom(BasicSmallFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
    }

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/** The event-queue callback type. */
using SmallFn = BasicSmallFn<>;

/** Wire-delivery continuation: called once with the arrival time. */
using DeliverFn = BasicSmallFn<Time>;

} // namespace ccsim::sim

#endif // CCSIM_SIM_SMALL_FN_HH
