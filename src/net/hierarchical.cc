#include "net/hierarchical.hh"

#include <climits>

#include "util/logging.hh"

namespace ccsim::net {

Hierarchical::Hierarchical(std::unique_ptr<Topology> inner, int chips,
                           int cores)
    : inner_(std::move(inner)), chips_(chips), cores_(cores)
{
    if (!inner_)
        fatal("Hierarchical: need an inner topology");
    if (chips < 1 || cores < 1)
        fatal("Hierarchical: need positive shape, got %d chips x "
              "%d cores",
              chips, cores);
    const long long nodes = inner_->numNodes();
    const long long ranks = nodes * chips * cores;
    const long long total_chips = nodes * chips;
    const long long links =
        static_cast<long long>(inner_->numLinks()) + total_chips +
        nodes;
    if (ranks > INT_MAX || links > INT_MAX)
        fatal("Hierarchical: %lld ranks / %lld links overflow", ranks,
              links);
    num_ranks_ = static_cast<int>(ranks);
    chip_base_ = static_cast<LinkId>(inner_->numLinks());
    bus_base_ = static_cast<LinkId>(chip_base_ + total_chips);
    num_links_ = static_cast<std::size_t>(links);
}

std::size_t
Hierarchical::numLinks() const
{
    return num_links_;
}

int
Hierarchical::linkClass(LinkId l) const
{
    if (l < chip_base_)
        return 0; // inter-node wire
    if (l < bus_base_)
        return 1; // intra-chip
    return 2;     // intra-node bus / NIC path
}

void
Hierarchical::startRoute(RouteCursor &cur, int src, int dst) const
{
    // Wrapper state lives in words 8..11; words 0..7 carry the
    // embedded inner walk (started below for inter-node routes).
    // s[8] = phase, s[9] = src chip, s[10] = dst chip,
    // s[11] = kind (0 same chip, 1 same node, 2 inter-node).
    auto &s = state(cur);
    const int src_chip = src / cores_;
    const int dst_chip = dst / cores_;
    const int src_node = src_chip / chips_;
    const int dst_node = dst_chip / chips_;
    s[8] = 0;
    s[9] = src_chip;
    s[10] = dst_chip;
    if (src_chip == dst_chip) {
        s[11] = 0;
    } else if (src_node == dst_node) {
        s[11] = 1;
    } else {
        s[11] = 2;
        // The inner walk's convention expects its endpoints in
        // s[0]/s[1]; the wrapper keeps everything it needs in 8..11.
        s[0] = src_node;
        s[1] = dst_node;
        startRouteOf(*inner_, cur, src_node, dst_node);
    }
}

LinkId
Hierarchical::stepRoute(RouteCursor &cur) const
{
    auto &s = state(cur);
    switch (s[8]) {
      case 0: // source chip's shared link
        s[8] = s[11] == 0 ? 5 : 1;
        return chip_base_ + s[9];
      case 1: // source node's bus
        s[8] = s[11] == 1 ? 4 : 2;
        return bus_base_ + s[9] / chips_;
      case 2: { // the wire: inner topology's walk, in place
        const LinkId l = stepRouteOf(*inner_, cur);
        if (l != kNoLink)
            return l;
        s[8] = 3;
        [[fallthrough]];
      }
      case 3: // destination node's bus
        s[8] = 4;
        return bus_base_ + s[10] / chips_;
      case 4: // destination chip's shared link
        s[8] = 5;
        return chip_base_ + s[10];
      default:
        return kNoLink;
    }
}

std::string
Hierarchical::name() const
{
    return "hier " + std::to_string(chips_) + "chip x " +
           std::to_string(cores_) + "core / " + inner_->name();
}

} // namespace ccsim::net
