#include "net/hypercube.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Hypercube::Hypercube(int num_nodes) : num_nodes_(num_nodes)
{
    if (num_nodes < 1 || (num_nodes & (num_nodes - 1)) != 0)
        fatal("Hypercube: node count %d is not a power of two",
              num_nodes);
    dims_ = 0;
    while ((1 << dims_) < num_nodes)
        ++dims_;
    if (dims_ == 0)
        dims_ = 1; // single node still gets one link slot
}

std::size_t
Hypercube::numLinks() const
{
    return static_cast<std::size_t>(num_nodes_) *
           static_cast<std::size_t>(dims_);
}

void
Hypercube::startRoute(RouteCursor &cur, int src, int dst) const
{
    // Walk state: s[2] = current corner, s[3] = next dimension.
    auto &s = state(cur);
    (void)dst;
    s[2] = src;
    s[3] = 0;
}

LinkId
Hypercube::stepRoute(RouteCursor &cur) const
{
    auto &s = state(cur);
    const int dst = s[1];
    // e-cube routing: correct differing bits from dimension 0 up.
    for (std::int32_t &d = s[3]; d < dims_; ++d) {
        if (((s[2] ^ dst) >> d) & 1) {
            int node = s[2];
            s[2] ^= 1 << d;
            int dim = d;
            ++d; // this dimension is corrected; resume above it
            return linkFrom(node, dim);
        }
    }
    if (s[2] != dst)
        panic("Hypercube: route from %d ended at %d, wanted %d", s[0],
              s[2], dst);
    return kNoLink;
}

std::string
Hypercube::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "hypercube %d-cube", dims_);
    return buf;
}

} // namespace ccsim::net
