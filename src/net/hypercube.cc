#include "net/hypercube.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Hypercube::Hypercube(int num_nodes) : num_nodes_(num_nodes)
{
    if (num_nodes < 1 || (num_nodes & (num_nodes - 1)) != 0)
        fatal("Hypercube: node count %d is not a power of two",
              num_nodes);
    dims_ = 0;
    while ((1 << dims_) < num_nodes)
        ++dims_;
    if (dims_ == 0)
        dims_ = 1; // single node still gets one link slot
}

std::size_t
Hypercube::numLinks() const
{
    return static_cast<std::size_t>(num_nodes_) *
           static_cast<std::size_t>(dims_);
}

void
Hypercube::route(int src, int dst, std::vector<LinkId> &out) const
{
    checkNode(src);
    checkNode(dst);
    // e-cube routing: correct differing bits from dimension 0 up.
    int cur = src;
    for (int d = 0; d < dims_; ++d) {
        if (((cur ^ dst) >> d) & 1) {
            out.push_back(linkFrom(cur, d));
            cur ^= 1 << d;
        }
    }
    if (cur != dst)
        panic("Hypercube: route from %d ended at %d, wanted %d", src,
              cur, dst);
}

std::string
Hypercube::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "hypercube %d-cube", dims_);
    return buf;
}

} // namespace ccsim::net
