/**
 * @file
 * Binary hypercube topology with e-cube (dimension-order) routing —
 * the interconnect of the era's other multicomputer family (nCUBE-2,
 * Intel iPSC/860).  Included so topology studies can compare the
 * paper's three networks against the hypercube road not taken:
 * log2 p diameter and p log2 p / 2 links, at the cost of O(log p)
 * ports per node.
 */

#ifndef CCSIM_NET_HYPERCUBE_HH
#define CCSIM_NET_HYPERCUBE_HH

#include "net/topology.hh"

namespace ccsim::net {

/** 2^dim nodes; node ids are corner coordinates. */
class Hypercube : public Topology
{
  public:
    /** Construct a hypercube with @p num_nodes = power of two. */
    explicit Hypercube(int num_nodes);

    int numNodes() const override { return num_nodes_; }
    std::size_t numLinks() const override;
    std::string name() const override;

    /** Number of dimensions (log2 of the node count). */
    int dimensions() const { return dims_; }

  protected:
    void startRoute(RouteCursor &cur, int src, int dst) const override;
    LinkId stepRoute(RouteCursor &cur) const override;

  private:
    // One directed link slot per (node, dimension).
    LinkId
    linkFrom(int node, int dim) const
    {
        return static_cast<LinkId>(node * dims_ + dim);
    }

    int num_nodes_;
    int dims_;
};

} // namespace ccsim::net

#endif // CCSIM_NET_HYPERCUBE_HH
