#include "net/fully_connected.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

FullyConnected::FullyConnected(int num_nodes) : num_nodes_(num_nodes)
{
    if (num_nodes < 1)
        fatal("FullyConnected: need at least 1 node, got %d", num_nodes);
}

std::size_t
FullyConnected::numLinks() const
{
    return static_cast<std::size_t>(num_nodes_) * num_nodes_;
}

void
FullyConnected::route(int src, int dst, std::vector<LinkId> &out) const
{
    checkNode(src);
    checkNode(dst);
    if (src == dst)
        return;
    out.push_back(static_cast<LinkId>(src * num_nodes_ + dst));
}

std::string
FullyConnected::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "fully-connected %d-node", num_nodes_);
    return buf;
}

} // namespace ccsim::net
