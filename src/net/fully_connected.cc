#include "net/fully_connected.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

FullyConnected::FullyConnected(int num_nodes) : num_nodes_(num_nodes)
{
    if (num_nodes < 1)
        fatal("FullyConnected: need at least 1 node, got %d", num_nodes);
}

std::size_t
FullyConnected::numLinks() const
{
    return static_cast<std::size_t>(num_nodes_) * num_nodes_;
}

void
FullyConnected::startRoute(RouteCursor &cur, int src, int dst) const
{
    // Walk state: s[2] = private pair link, emitted once.
    auto &s = state(cur);
    s[2] = static_cast<std::int32_t>(src * num_nodes_ + dst);
    s[3] = 0;
}

LinkId
FullyConnected::stepRoute(RouteCursor &cur) const
{
    auto &s = state(cur);
    if (s[3])
        return kNoLink;
    s[3] = 1;
    return static_cast<LinkId>(s[2]);
}

std::string
FullyConnected::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "fully-connected %d-node", num_nodes_);
    return buf;
}

} // namespace ccsim::net
