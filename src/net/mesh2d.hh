/**
 * @file
 * 2-D mesh topology with dimension-order (X-then-Y) routing — the
 * Intel Paragon's interconnect.  No wraparound links; messages first
 * correct their column, then their row, which is deadlock-free and
 * matches the Paragon's hardware router.
 */

#ifndef CCSIM_NET_MESH2D_HH
#define CCSIM_NET_MESH2D_HH

#include "net/topology.hh"

namespace ccsim::net {

/** rows x cols mesh; node id = row * cols + col. */
class Mesh2D : public Topology
{
  public:
    /** Construct a mesh with the given positive dimensions. */
    Mesh2D(int rows, int cols);

    int numNodes() const override { return rows_ * cols_; }
    std::size_t numLinks() const override;
    std::string name() const override;

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    /** Grid coordinates of @p node as (row, col). */
    std::pair<int, int> coords(int node) const;

    /** Node id at (row, col). */
    int nodeAt(int row, int col) const;

  protected:
    void startRoute(RouteCursor &cur, int src, int dst) const override;
    LinkId stepRoute(RouteCursor &cur) const override;

  private:
    // Four directed link slots per node: +x, -x, +y, -y.  Edge slots
    // exist as ids but are never routed over.
    enum Dir { PosX = 0, NegX = 1, PosY = 2, NegY = 3 };

    LinkId
    linkFrom(int node, Dir d) const
    {
        return static_cast<LinkId>(node * 4 + d);
    }

    int rows_;
    int cols_;
};

} // namespace ccsim::net

#endif // CCSIM_NET_MESH2D_HH
