#include "net/omega.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Omega::Omega(int num_nodes, int radix)
    : num_nodes_(num_nodes), radix_(radix)
{
    if (num_nodes < 2)
        fatal("Omega: need at least 2 nodes, got %d", num_nodes);
    if (radix < 2)
        fatal("Omega: radix must be >= 2, got %d", radix);
    stages_ = 1;
    long long ports = radix;
    while (ports < num_nodes) {
        ports *= radix;
        ++stages_;
        if (ports > (1 << 24))
            fatal("Omega: %d nodes at radix %d is unreasonably large",
                  num_nodes, radix);
    }
    ports_ = static_cast<int>(ports);
}

std::size_t
Omega::numLinks() const
{
    // Injection links + one output wire per (stage, port position).
    return static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(stages_) * ports_;
}

int
Omega::shuffle(int w) const
{
    // Rotate the base-radix digit string of w left by one digit.
    return (w * radix_) % ports_ + (w * radix_) / ports_;
}

void
Omega::startRoute(RouteCursor &cur, int src, int dst) const
{
    // Walk state: s[2] = current port position, s[3] = destination-
    // digit divisor, s[4] = next stage (-1 = injection link pending).
    auto &s = state(cur);
    (void)dst;
    s[2] = src;
    s[3] = ports_ / radix_;
    s[4] = -1;
}

LinkId
Omega::stepRoute(RouteCursor &cur) const
{
    auto &s = state(cur);
    const int dst = s[1];
    if (s[4] < 0) {
        // Injection link from the node into its network input port.
        s[4] = 0;
        return static_cast<LinkId>(s[0]);
    }
    int stage = s[4];
    if (stage >= stages_) {
        if (s[2] != dst)
            panic("Omega: route from %d ended at port %d, wanted %d",
                  s[0], s[2], dst);
        return kNoLink;
    }
    int w = shuffle(s[2]);
    int digit = (dst / s[3]) % radix_;
    s[3] = s[3] / radix_ > 0 ? s[3] / radix_ : 1;
    w = w - (w % radix_) + digit;
    s[2] = w;
    s[4] = stage + 1;
    // Output wire of this stage at position w (the final stage's
    // wire doubles as the ejection link).
    return static_cast<LinkId>(num_nodes_ + stage * ports_ + w);
}

std::string
Omega::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "omega %d-node radix-%d (%d stages)",
                  num_nodes_, radix_, stages_);
    return buf;
}

} // namespace ccsim::net
