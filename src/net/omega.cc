#include "net/omega.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Omega::Omega(int num_nodes, int radix)
    : num_nodes_(num_nodes), radix_(radix)
{
    if (num_nodes < 2)
        fatal("Omega: need at least 2 nodes, got %d", num_nodes);
    if (radix < 2)
        fatal("Omega: radix must be >= 2, got %d", radix);
    stages_ = 1;
    long long ports = radix;
    while (ports < num_nodes) {
        ports *= radix;
        ++stages_;
        if (ports > (1 << 24))
            fatal("Omega: %d nodes at radix %d is unreasonably large",
                  num_nodes, radix);
    }
    ports_ = static_cast<int>(ports);
}

std::size_t
Omega::numLinks() const
{
    // Injection links + one output wire per (stage, port position).
    return static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(stages_) * ports_;
}

int
Omega::shuffle(int w) const
{
    // Rotate the base-radix digit string of w left by one digit.
    return (w * radix_) % ports_ + (w * radix_) / ports_;
}

void
Omega::route(int src, int dst, std::vector<LinkId> &out) const
{
    checkNode(src);
    checkNode(dst);
    if (src == dst)
        return;

    // Injection link from the node into its network input port.
    out.push_back(static_cast<LinkId>(src));

    int w = src;
    // Destination digits, most significant first.
    int div = ports_ / radix_;
    for (int stage = 0; stage < stages_; ++stage) {
        w = shuffle(w);
        int digit = (dst / div) % radix_;
        div /= radix_;
        if (div == 0)
            div = 1;
        w = w - (w % radix_) + digit;
        // Output wire of this stage at position w (the final stage's
        // wire doubles as the ejection link).
        out.push_back(static_cast<LinkId>(
            num_nodes_ + stage * ports_ + w));
    }
    if (w != dst)
        panic("Omega: route from %d ended at port %d, wanted %d",
              src, w, dst);
}

std::string
Omega::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "omega %d-node radix-%d (%d stages)",
                  num_nodes_, radix_, stages_);
    return buf;
}

} // namespace ccsim::net
