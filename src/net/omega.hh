/**
 * @file
 * Multistage omega network of radix-r crossbar switches — a model of
 * the IBM SP2's Vulcan switch fabric (an indirect, multistage
 * network, unlike the direct mesh/torus of the Paragon/T3D).
 *
 * The network has S = ceil(log_r n) switch stages over N = r^S
 * virtual ports (ports beyond n are unattached padding, which lets
 * any power-of-two machine size use any radix).  Destination-tag
 * routing: before each stage the wires perform a perfect shuffle
 * (rotate-left of the base-r port digits) and the stage-i switch
 * steers to the i-th base-r digit of the destination, MSB first.
 *
 * Link model: one injection link per node plus the output wire of
 * every switch stage at every port position; the last stage's output
 * wires are the ejection links.  Messages whose routes cross the
 * same wire position at the same stage contend — exactly the
 * blocking behaviour that makes an omega network weaker than a
 * crossbar.
 */

#ifndef CCSIM_NET_OMEGA_HH
#define CCSIM_NET_OMEGA_HH

#include "net/topology.hh"

namespace ccsim::net {

/** Omega multistage interconnection network. */
class Omega : public Topology
{
  public:
    /**
     * @param num_nodes attached nodes (>= 2)
     * @param radix     switch radix (>= 2), e.g.\ 4 for Vulcan-like
     *                  4-way logical switching
     */
    Omega(int num_nodes, int radix);

    int numNodes() const override { return num_nodes_; }
    std::size_t numLinks() const override;
    std::string name() const override;

    /** Number of switch stages. */
    int stages() const { return stages_; }

    /** Virtual port count N = radix^stages (>= numNodes). */
    int ports() const { return ports_; }

    /** Perfect shuffle of a port position (rotate-left, base radix). */
    int shuffle(int w) const;

  protected:
    void startRoute(RouteCursor &cur, int src, int dst) const override;
    LinkId stepRoute(RouteCursor &cur) const override;

  private:
    int num_nodes_;
    int radix_;
    int stages_;
    int ports_;
};

} // namespace ccsim::net

#endif // CCSIM_NET_OMEGA_HH
