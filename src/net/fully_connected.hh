/**
 * @file
 * FullyConnected: an ideal crossbar with a dedicated directed link
 * between every ordered pair of nodes.  Messages between different
 * pairs never contend; it is the contention-free baseline used by
 * ablation benches to isolate how much of a result is topology.
 */

#ifndef CCSIM_NET_FULLY_CONNECTED_HH
#define CCSIM_NET_FULLY_CONNECTED_HH

#include "net/topology.hh"

namespace ccsim::net {

/** Ideal all-to-all wiring; every route is a single private link. */
class FullyConnected : public Topology
{
  public:
    /** Construct with @p num_nodes >= 1 attached nodes. */
    explicit FullyConnected(int num_nodes);

    int numNodes() const override { return num_nodes_; }
    std::size_t numLinks() const override;
    std::string name() const override;

  protected:
    void startRoute(RouteCursor &cur, int src, int dst) const override;
    LinkId stepRoute(RouteCursor &cur) const override;

  private:
    int num_nodes_;
};

} // namespace ccsim::net

#endif // CCSIM_NET_FULLY_CONNECTED_HH
