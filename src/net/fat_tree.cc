#include "net/fat_tree.hh"

#include <climits>
#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

FatTree::FatTree(std::vector<int> down, std::vector<int> up)
    : down_(std::move(down)), up_(std::move(up))
{
    if (down_.empty() || down_.size() != up_.size())
        fatal("FatTree: need matched non-empty down/up radix lists, "
              "got %zu down and %zu up",
              down_.size(), up_.size());
    const int levels = static_cast<int>(down_.size());
    dprod_.assign(levels + 1, 1);
    uprod_.assign(levels + 1, 1);
    for (int l = 1; l <= levels; ++l) {
        const int d = down_[l - 1];
        const int u = up_[l - 1];
        if (d < 1 || u < 1)
            fatal("FatTree: level %d radices must be >= 1 (d=%d u=%d)",
                  l, d, u);
        const long long dp = 1LL * dprod_[l - 1] * d;
        const long long upp = 1LL * uprod_[l - 1] * u;
        if (dp > INT_MAX || upp > INT_MAX)
            fatal("FatTree: level %d radix product overflows", l);
        dprod_[l] = static_cast<int>(dp);
        uprod_[l] = static_cast<int>(upp);
    }
    num_nodes_ = dprod_[levels];

    // Tier-by-tier link layout: all tier-l up-links, then all tier-l
    // down-links, then tier l+1.  Either direction of tier l has
    // (N / D_{l-1}) * U_l links.
    up_base_.resize(levels);
    down_base_.resize(levels);
    long long base = 0;
    for (int l = 1; l <= levels; ++l) {
        const long long tier =
            1LL * (num_nodes_ / dprod_[l - 1]) * uprod_[l];
        up_base_[l - 1] = static_cast<LinkId>(base);
        base += tier;
        down_base_[l - 1] = static_cast<LinkId>(base);
        base += tier;
        if (base > INT_MAX)
            fatal("FatTree: link ids overflow at level %d "
                  "(%lld links)",
                  l, base);
    }
    num_links_ = static_cast<std::size_t>(base);
}

std::size_t
FatTree::numLinks() const
{
    return num_links_;
}

int
FatTree::switchesAt(int l) const
{
    if (l < 1 || l > levels())
        panic("FatTree: no level %d (have 1..%d)", l, levels());
    return (num_nodes_ / dprod_[l]) * uprod_[l];
}

int
FatTree::commonLevel(int src, int dst) const
{
    int m = 0;
    while (src != dst) {
        src /= down_[m];
        dst /= down_[m];
        ++m;
    }
    return m;
}

void
FatTree::startRoute(RouteCursor &cur, int src, int dst) const
{
    // Walk state: s[2] = tier being traversed, s[3] = phase
    // (0 ascending, 1 descending), s[4] = entity group index g,
    // s[5] = entity multiplicity index j, s[6] = common level m.
    auto &s = state(cur);
    s[2] = 1;
    s[3] = 0;
    s[4] = src;
    s[5] = 0;
    s[6] = commonLevel(src, dst);
}

LinkId
FatTree::stepRoute(RouteCursor &cur) const
{
    auto &s = state(cur);
    const int dst = s[1];
    const int l = s[2];
    if (s[3] == 0) {
        // Ascend tier l from the level l-1 entity (g, j): parent
        // digit is destination-modulo-k.
        const int c = (dst / uprod_[l - 1]) % up_[l - 1];
        const int e = s[4] * uprod_[l - 1] + s[5];
        const LinkId link = up_base_[l - 1] +
                            static_cast<LinkId>(e) * up_[l - 1] + c;
        s[4] /= down_[l - 1];
        s[5] += c * uprod_[l - 1];
        if (l == s[6])
            s[3] = 1; // common ancestor reached; descend from here
        else
            s[2] = l + 1;
        return link;
    }
    if (l == 0) {
        if (s[4] != dst)
            panic("FatTree: route from %d ended at %d, wanted %d",
                  s[0], s[4], dst);
        return kNoLink;
    }
    // Descend tier l from switch (g, j) towards dst's subtree: the
    // child digit is dst's level-l mixed-radix digit, and the child's
    // multiplicity index drops the digits above its own level.
    const int a = (dst / dprod_[l - 1]) % down_[l - 1];
    const int sw = s[4] * uprod_[l] + s[5];
    const LinkId link = down_base_[l - 1] +
                        static_cast<LinkId>(sw) * down_[l - 1] + a;
    s[4] = s[4] * down_[l - 1] + a;
    s[5] %= uprod_[l - 1];
    s[2] = l - 1;
    return link;
}

std::unique_ptr<FatTree>
FatTree::balancedFor(int p)
{
    if (p < 1)
        fatal("FatTree: need at least 1 node, got %d", p);
    const auto half = [](int d) { return d > 1 ? d / 2 : 1; };
    if (p <= 4096) {
        auto [rows, cols] = meshDimsFor(p);
        if (rows == 1) // prime or tiny: one switch tier
            return std::make_unique<FatTree>(std::vector<int>{p},
                                             std::vector<int>{1});
        return std::make_unique<FatTree>(
            std::vector<int>{cols, rows},
            std::vector<int>{1, half(rows)});
    }
    auto [nx, ny, nz] = torusDimsFor(p);
    if (ny == 1)
        return std::make_unique<FatTree>(std::vector<int>{p},
                                         std::vector<int>{1});
    if (nz == 1)
        return std::make_unique<FatTree>(
            std::vector<int>{nx, ny}, std::vector<int>{1, half(ny)});
    return std::make_unique<FatTree>(
        std::vector<int>{nx, ny, nz},
        std::vector<int>{1, half(ny), half(nz)});
}

std::string
FatTree::name() const
{
    std::string out = "fat-tree XGFT(";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d; ", levels());
    out += buf;
    for (int l = 0; l < levels(); ++l) {
        std::snprintf(buf, sizeof(buf), "%s%d", l ? "," : "",
                      down_[l]);
        out += buf;
    }
    out += "; ";
    for (int l = 0; l < levels(); ++l) {
        std::snprintf(buf, sizeof(buf), "%s%d", l ? "," : "", up_[l]);
        out += buf;
    }
    out += ")";
    return out;
}

} // namespace ccsim::net
