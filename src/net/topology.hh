/**
 * @file
 * Topology: the wiring and routing of an interconnection network.
 *
 * A topology knows how many nodes it connects, how many directed
 * links it contains, and — via a deterministic routing function —
 * the exact sequence of directed links a message from src to dst
 * traverses.  Link identifiers index the Network's per-link occupancy
 * table, so two routes that share a LinkId contend for that wire.
 *
 * Concrete topologies: Mesh2D (Intel Paragon), Torus3D (Cray T3D),
 * Omega multistage (IBM SP2 Vulcan switch fabric), FullyConnected
 * (an ideal contention-free baseline).
 */

#ifndef CCSIM_NET_TOPOLOGY_HH
#define CCSIM_NET_TOPOLOGY_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/pool.hh"

namespace ccsim::net {

/** Index of a directed physical link within a topology. */
using LinkId = std::int32_t;

/**
 * A stored route: the directed links from one node to another, backed
 * by the thread's frame pool.  Used for long-lived route storage on
 * the simulation hot path (Network's route cache is rebuilt for every
 * Machine, i.e.\ every sweep point); Topology::route itself keeps
 * taking a plain vector — it runs once per (src, dst) pair.
 */
using RouteVec = std::vector<LinkId, sim::PoolAlloc<LinkId>>;

/** Abstract interconnect wiring + routing. */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Number of attached processing nodes. */
    virtual int numNodes() const = 0;

    /** Total directed links (valid LinkIds are [0, numLinks())). */
    virtual std::size_t numLinks() const = 0;

    /**
     * Append the directed links of the route from @p src to @p dst to
     * @p out.  Routing is deterministic and minimal for the direct
     * topologies.  src == dst yields an empty path.  Panics on
     * out-of-range node ids.
     */
    virtual void route(int src, int dst, std::vector<LinkId> &out) const = 0;

    /** Human-readable name, e.g.\ "mesh2d 8x4". */
    virtual std::string name() const = 0;

    /** Number of hops (links) from src to dst. */
    int hops(int src, int dst) const;

    /** Maximum hop count over all ordered pairs (brute force). */
    int diameter() const;

  protected:
    /** Panic unless @p node is a valid node id. */
    void checkNode(int node) const;
};

/**
 * Pick near-square 2-D mesh dimensions (rows x cols) for @p p nodes.
 * p must be a power of two (the only machine sizes the paper uses).
 */
std::pair<int, int> meshDimsFor(int p);

/** Pick near-cubic 3-D torus dimensions for @p p (power of two). */
std::array<int, 3> torusDimsFor(int p);

} // namespace ccsim::net

#endif // CCSIM_NET_TOPOLOGY_HH
