/**
 * @file
 * Topology: the wiring and routing of an interconnection network.
 *
 * A topology knows how many nodes it connects, how many directed
 * links it contains, and — via a deterministic routing function —
 * the exact sequence of directed links a message from src to dst
 * traverses.  Link identifiers index the Network's per-link occupancy
 * table, so two routes that share a LinkId contend for that wire.
 *
 * Routing is ANALYTIC: a route is never materialized.  routeFrom()
 * returns a RouteCursor — a fixed-size walk state advanced one link
 * at a time — so enumerating a route costs O(hops) time and O(1)
 * memory at any machine size.  This is what lets the simulator reach
 * p = 100k–1M ranks: the old per-(src, dst) route cache was O(p²)
 * memory and is gone entirely.
 *
 * Concrete topologies: Mesh2D (Intel Paragon), Torus3D (Cray T3D),
 * Omega multistage (IBM SP2 Vulcan switch fabric), Hypercube
 * (nCUBE/iPSC), FatTree (k-ary D-mod-k), Dragonfly (group/router/
 * node), Hierarchical (multi-core node wrapper), FullyConnected (an
 * ideal contention-free baseline).  See docs/TOPOLOGY.md.
 */

#ifndef CCSIM_NET_TOPOLOGY_HH
#define CCSIM_NET_TOPOLOGY_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ccsim::net {

/** Index of a directed physical link within a topology. */
using LinkId = std::int32_t;

/** Cursor value when the walk is exhausted. */
inline constexpr LinkId kNoLink = -1;

/** Fixed size of a RouteCursor's walk state, in 32-bit words.  Words
 *  0..7 belong to the (innermost) topology; words 8..11 are reserved
 *  for wrappers (Hierarchical) that embed an inner walk. */
inline constexpr int kCursorWords = 12;

class Topology;

/**
 * An in-progress analytic route walk: O(1) state, one link per
 * next() call, kNoLink when the destination is reached.  Obtained
 * from Topology::routeFrom(); cheap to copy, so a caller that needs
 * several passes over the same route (Network::transfer does) simply
 * restarts from a saved copy or calls routeFrom() again.
 *
 * The state words are private to the owning topology's stepRoute();
 * nothing outside a Topology implementation interprets them.
 */
class RouteCursor
{
  public:
    /** An exhausted cursor (next() returns kNoLink forever). */
    RouteCursor() = default;

    /** The next link on the route, or kNoLink when done. */
    LinkId next();

    /** True once the walk has emitted its last link. */
    bool done() const { return topo_ == nullptr; }

  private:
    friend class Topology;

    const Topology *topo_ = nullptr; //!< null = exhausted
    /** topology-private walk state */
    std::array<std::int32_t, kCursorWords> s{};
};

/** Abstract interconnect wiring + analytic routing. */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Number of attached processing nodes. */
    virtual int numNodes() const = 0;

    /** Total directed links (valid LinkIds are [0, numLinks())). */
    virtual std::size_t numLinks() const = 0;

    /** Human-readable name, e.g.\ "mesh2d 8x4". */
    virtual std::string name() const = 0;

    /**
     * Begin the deterministic route walk from @p src to @p dst.
     * Routing is minimal for the direct topologies.  src == dst
     * yields an exhausted cursor (empty path).  Panics on
     * out-of-range node ids.
     */
    RouteCursor routeFrom(int src, int dst) const;

    /**
     * Visit every link of the @p src -> @p dst route in order:
     * fn(LinkId).  The streaming analogue of the old
     * route-into-vector API, for callers that want the whole path in
     * one expression.
     */
    template <typename Fn>
    void
    forEachLink(int src, int dst, Fn &&fn) const
    {
        RouteCursor cur = routeFrom(src, dst);
        for (LinkId l = cur.next(); l != kNoLink; l = cur.next())
            fn(l);
    }

    /**
     * Materialize a route into a plain vector — tests, debug dumps,
     * and tooling only; simulation hot paths walk the cursor.
     */
    std::vector<LinkId> routeVector(int src, int dst) const;

    /** Number of hops (links) from src to dst. */
    int hops(int src, int dst) const;

    /** Maximum hop count over all ordered pairs (brute force). */
    int diameter() const;

    /**
     * Physical class of a link, indexing NetworkParams overrides:
     * 0 is the base inter-node wire; hierarchical topologies return
     * 1 (intra-chip) / 2 (intra-node bus) for their local links.
     * Uniform topologies keep the default.
     */
    virtual int linkClass(LinkId) const { return 0; }

    /** Number of distinct link classes (1 = uniform wiring). */
    virtual int numLinkClasses() const { return 1; }

  protected:
    /**
     * Initialize @p cur's state words for the src -> dst walk.  Node
     * ids are already validated and src != dst.  Implementations that
     * need no setup beyond endpoints can rely on the convention that
     * s[0] = src and s[1] = dst are pre-loaded by routeFrom().
     */
    virtual void startRoute(RouteCursor &cur, int src, int dst) const = 0;

    /**
     * Emit the next link of @p cur's walk and advance its state, or
     * return kNoLink when the destination has been reached.
     */
    virtual LinkId stepRoute(RouteCursor &cur) const = 0;

    /** Panic unless @p node is a valid node id. */
    void checkNode(int node) const;

    /** A concrete topology's window into its cursors' walk state
     *  (friendship is not inherited). */
    static std::array<std::int32_t, kCursorWords> &
    state(RouteCursor &cur)
    {
        return cur.s;
    }

    static const std::array<std::int32_t, kCursorWords> &
    state(const RouteCursor &cur)
    {
        return cur.s;
    }

    /**
     * Delegation shims for wrapper topologies (Hierarchical): start /
     * advance another topology's walk inside this cursor's state
     * words.  Static so the protected-through-sibling access rule
     * does not get in the way.
     */
    static void
    startRouteOf(const Topology &t, RouteCursor &cur, int src, int dst)
    {
        t.startRoute(cur, src, dst);
    }

    static LinkId
    stepRouteOf(const Topology &t, RouteCursor &cur)
    {
        return t.stepRoute(cur);
    }

    friend class RouteCursor;
};

inline LinkId
RouteCursor::next()
{
    if (!topo_)
        return kNoLink;
    LinkId l = topo_->stepRoute(*this);
    if (l == kNoLink)
        topo_ = nullptr;
    return l;
}

/**
 * Pick near-square 2-D mesh dimensions (rows x cols) for any
 * @p p >= 1: cols is the smallest divisor of p at or above sqrt(p),
 * so the grid is as square as p's factorization allows, wider than
 * tall (Paragon cabinets).  Power-of-two sizes keep their historical
 * shapes (8 -> 2x4, 128 -> 8x16); a prime p degenerates to 1 x p.
 */
std::pair<int, int> meshDimsFor(int p);

/** Near-cubic 3-D torus dimensions for any @p p >= 1 (nx >= ny >= nz,
 *  extra factors to x first; power-of-two sizes keep their historical
 *  shapes, e.g.\ 128 -> 8x4x4). */
std::array<int, 3> torusDimsFor(int p);

} // namespace ccsim::net

#endif // CCSIM_NET_TOPOLOGY_HH
