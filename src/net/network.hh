/**
 * @file
 * Network: per-link occupancy on top of a Topology.
 *
 * The model is virtual cut-through with path reservation — the
 * coarsest model that still produces the three network effects the
 * paper's results hinge on:
 *
 *  1. serialisation: two messages crossing the same wire take twice
 *     as long as one;
 *  2. topology bisection: a 2-D mesh saturates before a 3-D torus of
 *     the same size under total exchange;
 *  3. distance: per-hop router latency scales with route length.
 *
 * A transfer of b bytes from src to dst starts when every link on
 * its deterministic route is free, holds each for the wire
 * serialisation time (b + packet overhead at the link bandwidth),
 * and is fully received hops * hop_latency + serialisation after it
 * starts.  Contention can be disabled for ablation studies.
 *
 * Routing is ANALYTIC: transfer() walks the route with a RouteCursor
 * (O(1) state, one link per step) as many times as it needs passes —
 * there is no stored route anywhere.  The old per-(src, dst) route
 * cache was O(p^2) memory and capped the simulator around p ~ 10^4;
 * with analytic walks plus lazily-paged link state (LazyArray), a
 * Network's footprint is O(links touched), and p = 10^5..10^6 rank
 * machines are simulable.
 *
 * Heterogeneous links: a multi-class topology (Hierarchical's
 * intra-chip / intra-node / inter-node wiring) can be given per-class
 * NetworkParams via setLinkClassParams(); the worm is then gated by
 * the slowest link's serialisation and accumulates per-hop latency
 * per class.  Uniform (single-class) topologies keep the exact
 * historical arithmetic, bit for bit.
 */

#ifndef CCSIM_NET_NETWORK_HH
#define CCSIM_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/topology.hh"
#include "util/lazy_array.hh"
#include "util/units.hh"

namespace ccsim::net {

/** Physical-layer parameters of an interconnect. */
struct NetworkParams
{
    /** Per-link bandwidth in MB/s (paper: SP2 40, Paragon 175,
     *  T3D 300). */
    double link_bandwidth_mbs = 100.0;

    /** Router latency per hop (paper: SP2 125 ns, Paragon 40 ns,
     *  T3D 20 ns). */
    Time hop_latency = 0;

    /** Header/envelope bytes added to each message on the wire. */
    Bytes packet_overhead = 0;

    /** Model link contention (disable for ablation). */
    bool contention = true;
};

/** An interconnect instance: topology + link occupancy + stats. */
class Network
{
  public:
    Network(std::unique_ptr<Topology> topo, const NetworkParams &params);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /**
     * Move @p bytes from @p src to @p dst starting no earlier than
     * @p now; returns the absolute time the last byte arrives at the
     * destination's network interface.  src must differ from dst
     * (self-sends never touch the network).
     */
    Time transfer(int src, int dst, Bytes bytes, Time now);

    /**
     * Two-leg detour: move @p bytes src -> via -> dst as two chained
     * transfers (the second starts when the first fully arrives —
     * store-and-forward at @p via, deliberately pessimistic).  Used
     * by the fault layer's `degrade` recovery to route around a
     * black-holed link; the paid price is exactly the two legs'
     * serialisation, contention, and hop latency.  @p via must
     * differ from both endpoints.
     */
    Time transferVia(int src, int via, int dst, Bytes bytes, Time now);

    const Topology &topology() const { return *topo_; }
    const NetworkParams &params() const { return params_; }

    /**
     * Override the physical parameters of link class @p cls (see
     * Topology::linkClass).  Class 0 defaults to the construction
     * params; classes >= 1 (hierarchical intra-chip / intra-node
     * links) default to the same until overridden.  Panics on a class
     * the topology does not have.
     */
    void setLinkClassParams(int cls, const NetworkParams &p);

    /** Effective parameters of link class @p cls. */
    const NetworkParams &linkClassParams(int cls) const;

    /** Total messages injected. */
    std::uint64_t messages() const { return messages_; }

    /** Total payload bytes moved (excluding packet overhead). */
    Bytes totalBytes() const { return total_bytes_; }

    /** Sum over links of busy time (for utilization reports). */
    Time totalLinkBusy() const { return total_link_busy_; }

    /** Forget all link occupancy and stats (fresh measurement run).
     *  O(links touched), not O(total links). */
    void reset();

    /** Route walks performed (one per transfer; the streaming
     *  successor of the old route-cache hit/miss counters). */
    std::uint64_t routeWalks() const { return route_walks_; }

    /** Total links enumerated across all route walks. */
    std::uint64_t routeHops() const { return route_hops_; }

    /** Utilization summary over a time horizon. */
    struct Utilization
    {
        double mean = 0.0;     //!< mean busy fraction over all links
        double max = 0.0;      //!< busiest link's fraction
        LinkId hottest = -1;   //!< id of the busiest link
        int links_used = 0;    //!< links that carried any traffic
    };

    /**
     * Busy fractions up to @p horizon (e.g.\ the simulator's final
     * time).  Approximates each link's busy time by its last
     * reservation end clamped to the horizon — exact when traffic is
     * back-to-back, an upper bound otherwise; intended for relative
     * comparisons (which links are hot), not absolute accounting.
     */
    Utilization utilization(Time horizon) const;

    /**
     * Exact accumulated wire serialisation time of one link (unlike
     * utilization(), which approximates by last reservation end).
     * Always maintained; reset() clears it.  Replaces the old dense
     * linkBusyTimes() vector accessor.
     */
    Time
    linkBusy(LinkId l) const
    {
        return link_busy_.get(static_cast<std::size_t>(l));
    }

    /** Exact busy fractions over @p horizon, from linkBusy(). */
    Utilization exactUtilization(Time horizon) const;

    /**
     * Visit fn(LinkId, Time busy) for every link whose occupancy page
     * has been touched, in ascending id order — the O(links touched)
     * iteration backing per-link reports at extreme scale.
     */
    template <typename Fn>
    void
    forEachTouchedLink(Fn &&fn) const
    {
        link_busy_.forEach([&](std::size_t i, Time busy) {
            fn(static_cast<LinkId>(i), busy);
        });
    }

    /**
     * Optional per-link traffic/contention counters for the metrics
     * layer.  Off by default: transfer() pays nothing for them until
     * enableCounters() is called (machine::Machine does so when built
     * with collect_metrics).  Observation only — enabling them never
     * changes any transfer time.
     */
    struct LinkCounters
    {
        LazyArray<Bytes> bytes; //!< payload bytes carried per link
        LazyArray<Time> stall;  //!< wait time charged to each link
        Time total_stall = 0;   //!< sum of per-transfer waits
        std::uint64_t stalled_transfers = 0; //!< transfers that waited
    };

    /** Start collecting LinkCounters (idempotent). */
    void enableCounters();

    /** The counters, or nullptr when collection is off. */
    const LinkCounters *counters() const { return counters_.get(); }

    /** Zero the LinkCounters without touching occupancy state (the
     *  metrics-reset path; simulated behaviour is unaffected). */
    void resetCounters();

    /**
     * Per-link serialisation slowdown hook (>= 1.0).  When set, each
     * transfer's wire time is scaled by the worst factor along its
     * route, sampled at the transfer's start time.  Installed by
     * machine::Machine when a fault spec degrades links; net stays
     * independent of the fault library.
     */
    using LinkSlowdownHook = std::function<double(LinkId, Time)>;
    void
    setLinkSlowdownHook(LinkSlowdownHook hook)
    {
        slowdown_hook_ = std::move(hook);
    }

  private:
    std::unique_ptr<Topology> topo_;
    NetworkParams params_;
    /** Per-link-class params; index by Topology::linkClass.  Size 1
     *  for uniform topologies — then the single entry is params_ and
     *  the classed arithmetic is bypassed entirely. */
    std::vector<NetworkParams> class_params_;
    bool classed_ = false;
    LazyArray<Time> link_free_;
    LazyArray<Time> link_busy_;
    LinkSlowdownHook slowdown_hook_;
    std::unique_ptr<LinkCounters> counters_;

    std::uint64_t route_walks_ = 0;
    std::uint64_t route_hops_ = 0;

    std::uint64_t messages_ = 0;
    Bytes total_bytes_ = 0;
    Time total_link_busy_ = 0;
};

} // namespace ccsim::net

#endif // CCSIM_NET_NETWORK_HH
