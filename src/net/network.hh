/**
 * @file
 * Network: per-link occupancy on top of a Topology.
 *
 * The model is virtual cut-through with path reservation — the
 * coarsest model that still produces the three network effects the
 * paper's results hinge on:
 *
 *  1. serialisation: two messages crossing the same wire take twice
 *     as long as one;
 *  2. topology bisection: a 2-D mesh saturates before a 3-D torus of
 *     the same size under total exchange;
 *  3. distance: per-hop router latency scales with route length.
 *
 * A transfer of b bytes from src to dst starts when every link on
 * its dimension-order route is free, holds each for the wire
 * serialisation time (b + packet overhead at the link bandwidth),
 * and is fully received hops * hop_latency + serialisation after it
 * starts.  Contention can be disabled for ablation studies.
 *
 * Routing is deterministic, so the link path for a (src, dst) pair
 * never changes over a network's lifetime; transfer() therefore
 * memoises routes in a per-pair cache filled lazily from
 * Topology::route.  A k-iteration collective measurement reuses the
 * same pairs k times, so all but the first enumeration of each pair
 * is a cache hit.  reset() drops the cache along with the occupancy
 * state (fresh-measurement hygiene; cached paths would remain valid).
 */

#ifndef CCSIM_NET_NETWORK_HH
#define CCSIM_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/topology.hh"
#include "util/units.hh"

namespace ccsim::net {

/** Physical-layer parameters of an interconnect. */
struct NetworkParams
{
    /** Per-link bandwidth in MB/s (paper: SP2 40, Paragon 175,
     *  T3D 300). */
    double link_bandwidth_mbs = 100.0;

    /** Router latency per hop (paper: SP2 125 ns, Paragon 40 ns,
     *  T3D 20 ns). */
    Time hop_latency = 0;

    /** Header/envelope bytes added to each message on the wire. */
    Bytes packet_overhead = 0;

    /** Model link contention (disable for ablation). */
    bool contention = true;
};

/** An interconnect instance: topology + link occupancy + stats. */
class Network
{
  public:
    Network(std::unique_ptr<Topology> topo, const NetworkParams &params);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /**
     * Move @p bytes from @p src to @p dst starting no earlier than
     * @p now; returns the absolute time the last byte arrives at the
     * destination's network interface.  src must differ from dst
     * (self-sends never touch the network).
     */
    Time transfer(int src, int dst, Bytes bytes, Time now);

    /**
     * Two-leg detour: move @p bytes src -> via -> dst as two chained
     * transfers (the second starts when the first fully arrives —
     * store-and-forward at @p via, deliberately pessimistic).  Used
     * by the fault layer's `degrade` recovery to route around a
     * black-holed link; the paid price is exactly the two legs'
     * serialisation, contention, and hop latency.  @p via must
     * differ from both endpoints.
     */
    Time transferVia(int src, int via, int dst, Bytes bytes, Time now);

    const Topology &topology() const { return *topo_; }
    const NetworkParams &params() const { return params_; }

    /** Total messages injected. */
    std::uint64_t messages() const { return messages_; }

    /** Total payload bytes moved (excluding packet overhead). */
    Bytes totalBytes() const { return total_bytes_; }

    /** Sum over links of busy time (for utilization reports). */
    Time totalLinkBusy() const { return total_link_busy_; }

    /** Forget all link occupancy, stats, and cached routes (fresh
     *  measurement run). */
    void reset();

    /**
     * The memoised route from @p src to @p dst (filled from
     * Topology::route on first use).  The reference stays valid until
     * reset().  src must differ from dst.
     */
    const RouteVec &cachedRoute(int src, int dst);

    /** Transfers/lookups served from the route cache. */
    std::uint64_t routeCacheHits() const { return route_hits_; }

    /** Route enumerations that had to consult the topology. */
    std::uint64_t routeCacheMisses() const { return route_misses_; }

    /** Utilization summary over a time horizon. */
    struct Utilization
    {
        double mean = 0.0;     //!< mean busy fraction over all links
        double max = 0.0;      //!< busiest link's fraction
        LinkId hottest = -1;   //!< id of the busiest link
        int links_used = 0;    //!< links that carried any traffic
    };

    /**
     * Busy fractions up to @p horizon (e.g.\ the simulator's final
     * time).  Approximates each link's busy time by its last
     * reservation end clamped to the horizon — exact when traffic is
     * back-to-back, an upper bound otherwise; intended for relative
     * comparisons (which links are hot), not absolute accounting.
     */
    Utilization utilization(Time horizon) const;

    /**
     * Exact per-link busy accounting: link i's accumulated wire
     * serialisation time (unlike utilization(), which approximates by
     * last reservation end).  Added for the fault layer's degraded-
     * link diagnostics; always maintained, reset() clears it.
     */
    const std::vector<Time> &linkBusyTimes() const { return link_busy_; }

    /** Exact busy fractions over @p horizon, from linkBusyTimes(). */
    Utilization exactUtilization(Time horizon) const;

    /**
     * Optional per-link traffic/contention counters for the metrics
     * layer.  Off by default: transfer() pays nothing for them until
     * enableCounters() is called (machine::Machine does so when built
     * with collect_metrics).  Observation only — enabling them never
     * changes any transfer time.
     */
    struct LinkCounters
    {
        std::vector<Bytes> bytes; //!< payload bytes carried per link
        std::vector<Time> stall;  //!< wait time charged to each link
        Time total_stall = 0;     //!< sum of per-transfer waits
        std::uint64_t stalled_transfers = 0; //!< transfers that waited
    };

    /** Start collecting LinkCounters (idempotent). */
    void enableCounters();

    /** The counters, or nullptr when collection is off. */
    const LinkCounters *counters() const { return counters_.get(); }

    /** Zero the LinkCounters without touching occupancy state (the
     *  metrics-reset path; simulated behaviour is unaffected). */
    void resetCounters();

    /**
     * Per-link serialisation slowdown hook (>= 1.0).  When set, each
     * transfer's wire time is scaled by the worst factor along its
     * route, sampled at the transfer's start time.  Installed by
     * machine::Machine when a fault spec degrades links; net stays
     * independent of the fault library.
     */
    using LinkSlowdownHook = std::function<double(LinkId, Time)>;
    void
    setLinkSlowdownHook(LinkSlowdownHook hook)
    {
        slowdown_hook_ = std::move(hook);
    }

  private:
    std::unique_ptr<Topology> topo_;
    NetworkParams params_;
    std::vector<Time> link_free_;
    std::vector<Time> link_busy_;
    LinkSlowdownHook slowdown_hook_;
    std::unique_ptr<LinkCounters> counters_;

    /** Per-(src,dst) memoised routes, indexed src * numNodes + dst.
     *  An unfilled slot is empty; every legal route has >= 1 link. */
    std::vector<RouteVec> route_cache_;
    std::uint64_t route_hits_ = 0;
    std::uint64_t route_misses_ = 0;

    std::uint64_t messages_ = 0;
    Bytes total_bytes_ = 0;
    Time total_link_busy_ = 0;
};

} // namespace ccsim::net

#endif // CCSIM_NET_NETWORK_HH
