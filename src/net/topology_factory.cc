#include "net/topology_factory.hh"

#include <cctype>
#include <cstdio>

#include "net/dragonfly.hh"
#include "net/fat_tree.hh"
#include "net/fully_connected.hh"
#include "net/hierarchical.hh"
#include "net/hypercube.hh"
#include "net/mesh2d.hh"
#include "net/omega.hh"
#include "net/torus3d.hh"
#include "util/cli.hh"
#include "util/error.hh"

namespace ccsim::net {
namespace {

[[noreturn]] void
specFail(const std::string &spec, const std::string &why)
{
    throw ConfigError("bad topology spec '" + spec + "': " + why);
}

/** Strictly parse a positive integer field of a spec. */
int
parsePositive(const std::string &spec, const std::string &field,
              const std::string &what)
{
    if (field.empty())
        specFail(spec, "empty " + what);
    long v = 0;
    for (char ch : field) {
        if (!std::isdigit(static_cast<unsigned char>(ch)))
            specFail(spec, what + " '" + field +
                               "' is not a positive integer");
        v = v * 10 + (ch - '0');
        if (v > 1'000'000'000L)
            specFail(spec, what + " '" + field + "' is out of range");
    }
    if (v < 1)
        specFail(spec, what + " must be >= 1");
    return static_cast<int>(v);
}

/** Split @p s on @p sep, keeping empty items (they are errors the
 *  caller reports with context). */
std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

/** Parse "AxBxC..." into exactly @p want positive dimensions. */
std::vector<int>
parseDims(const std::string &spec, const std::string &params,
          std::size_t want, const std::string &shape)
{
    auto fields = splitOn(params, 'x');
    if (fields.size() != want)
        specFail(spec, "expected " + shape + ", got '" + params + "'");
    std::vector<int> dims;
    for (const auto &f : fields)
        dims.push_back(parsePositive(spec, f, "dimension"));
    return dims;
}

/** Check explicit dimensions multiply out to the machine size. */
void
checkProduct(const std::string &spec, const std::vector<int> &dims,
             int p)
{
    long long prod = 1;
    for (int d : dims)
        prod *= d;
    if (prod != p) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "dimensions give %lld nodes but the machine "
                      "has %d",
                      prod, p);
        specFail(spec, buf);
    }
}

std::unique_ptr<Topology>
makeInner(const std::string &spec, const std::string &inner, int p)
{
    std::string family = inner;
    std::string params;
    if (auto colon = inner.find(':'); colon != std::string::npos) {
        family = inner.substr(0, colon);
        params = inner.substr(colon + 1);
    }
    const bool has_params = family.size() < inner.size();

    if (family == "mesh2d") {
        auto [rows, cols] = meshDimsFor(p);
        if (has_params) {
            auto d = parseDims(spec, params, 2, "ROWSxCOLS");
            checkProduct(spec, d, p);
            rows = d[0];
            cols = d[1];
        }
        return std::make_unique<Mesh2D>(rows, cols);
    }
    if (family == "torus3d") {
        auto [nx, ny, nz] = torusDimsFor(p);
        if (has_params) {
            auto d = parseDims(spec, params, 3, "XxYxZ");
            checkProduct(spec, d, p);
            nx = d[0];
            ny = d[1];
            nz = d[2];
        }
        return std::make_unique<Torus3D>(nx, ny, nz);
    }
    if (family == "omega") {
        int radix = 4;
        if (has_params)
            radix = parsePositive(spec, params, "switch radix");
        if (p < 1 || (p & (p - 1)) != 0)
            specFail(spec, "omega needs a power-of-two node count, "
                           "got " +
                               std::to_string(p));
        return std::make_unique<Omega>(p, radix);
    }
    if (family == "hypercube") {
        if (has_params)
            specFail(spec, "hypercube takes no parameters");
        if (p < 1 || (p & (p - 1)) != 0)
            specFail(spec, "hypercube needs a power-of-two node "
                           "count, got " +
                               std::to_string(p));
        return std::make_unique<Hypercube>(p);
    }
    if (family == "fully-connected") {
        if (has_params)
            specFail(spec, "fully-connected takes no parameters");
        return std::make_unique<FullyConnected>(p);
    }
    if (family == "dragonfly") {
        if (!has_params)
            return Dragonfly::balancedFor(p);
        auto d = parseDims(spec, params, 3, "GROUPSxROUTERSxNODES");
        checkProduct(spec, d, p);
        return std::make_unique<Dragonfly>(d[0], d[1], d[2]);
    }
    if (family == "fattree") {
        if (!has_params)
            return FatTree::balancedFor(p);
        auto blocks = splitOn(params, ';');
        if (blocks.size() != 3)
            specFail(spec, "expected L;d1,..,dL;u1,..,uL, got '" +
                               params + "'");
        const std::size_t levels = static_cast<std::size_t>(
            parsePositive(spec, blocks[0], "level count"));
        std::vector<int> down, up;
        for (const auto &f : splitOn(blocks[1], ','))
            down.push_back(parsePositive(spec, f, "down radix"));
        for (const auto &f : splitOn(blocks[2], ','))
            up.push_back(parsePositive(spec, f, "up radix"));
        if (down.size() != levels || up.size() != levels)
            specFail(spec,
                     "level count says " + blocks[0] + " but got " +
                         std::to_string(down.size()) + " down and " +
                         std::to_string(up.size()) + " up radices");
        checkProduct(spec, down, p);
        return std::make_unique<FatTree>(std::move(down),
                                         std::move(up));
    }

    std::string msg = "unknown topology family '" + family + "'";
    if (auto hint = cli::closestMatch(family, topologyFamilies());
        !hint.empty())
        msg += " (did you mean '" + hint + "'?)";
    specFail(spec, msg);
}

} // namespace

const std::vector<std::string> &
topologyFamilies()
{
    static const std::vector<std::string> families{
        "mesh2d",    "torus3d",        "omega",     "hypercube",
        "fattree",   "fully-connected", "dragonfly", "hier",
    };
    return families;
}

std::unique_ptr<Topology>
makeTopology(const std::string &spec, int p)
{
    if (p < 1)
        throw ConfigError("bad topology spec '" + spec +
                          "': machine needs at least 1 node, got " +
                          std::to_string(p));
    if (spec.empty())
        specFail(spec, "empty spec");
    if (spec.rfind("hier:", 0) == 0) {
        const std::string rest = spec.substr(5);
        const auto slash = rest.find('/');
        if (slash == std::string::npos)
            specFail(spec, "hier needs CHIPSxCORES/inner-spec");
        auto shape =
            parseDims(spec, rest.substr(0, slash), 2, "CHIPSxCORES");
        const std::string inner = rest.substr(slash + 1);
        const long long per_node = 1LL * shape[0] * shape[1];
        if (p % per_node != 0) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "%d ranks do not divide into %lld per "
                          "node",
                          p, per_node);
            specFail(spec, buf);
        }
        return std::make_unique<Hierarchical>(
            makeInner(spec, inner, static_cast<int>(p / per_node)),
            shape[0], shape[1]);
    }
    return makeInner(spec, spec, p);
}

} // namespace ccsim::net
