#include "net/mesh2d.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Mesh2D::Mesh2D(int rows, int cols) : rows_(rows), cols_(cols)
{
    if (rows < 1 || cols < 1)
        fatal("Mesh2D: invalid dimensions %dx%d", rows, cols);
}

std::size_t
Mesh2D::numLinks() const
{
    return static_cast<std::size_t>(numNodes()) * 4;
}

std::pair<int, int>
Mesh2D::coords(int node) const
{
    checkNode(node);
    return {node / cols_, node % cols_};
}

int
Mesh2D::nodeAt(int row, int col) const
{
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_)
        panic("Mesh2D: coordinates (%d, %d) outside %dx%d",
              row, col, rows_, cols_);
    return row * cols_ + col;
}

void
Mesh2D::startRoute(RouteCursor &cur, int src, int dst) const
{
    // Walk state: current (row, col) and target (row, col).
    auto &s = state(cur);
    s[2] = src / cols_;
    s[3] = src % cols_;
    s[4] = dst / cols_;
    s[5] = dst % cols_;
}

LinkId
Mesh2D::stepRoute(RouteCursor &cur) const
{
    auto &s = state(cur);
    std::int32_t &row = s[2];
    std::int32_t &col = s[3];
    const int drow = s[4];
    const int dcol = s[5];
    int node = row * cols_ + col;
    // X first: correct the column, then Y: correct the row.
    if (col < dcol) {
        ++col;
        return linkFrom(node, PosX);
    }
    if (col > dcol) {
        --col;
        return linkFrom(node, NegX);
    }
    if (row < drow) {
        ++row;
        return linkFrom(node, PosY);
    }
    if (row > drow) {
        --row;
        return linkFrom(node, NegY);
    }
    return kNoLink;
}

std::string
Mesh2D::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "mesh2d %dx%d", rows_, cols_);
    return buf;
}

} // namespace ccsim::net
