#include "net/mesh2d.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Mesh2D::Mesh2D(int rows, int cols) : rows_(rows), cols_(cols)
{
    if (rows < 1 || cols < 1)
        fatal("Mesh2D: invalid dimensions %dx%d", rows, cols);
}

std::size_t
Mesh2D::numLinks() const
{
    return static_cast<std::size_t>(numNodes()) * 4;
}

std::pair<int, int>
Mesh2D::coords(int node) const
{
    checkNode(node);
    return {node / cols_, node % cols_};
}

int
Mesh2D::nodeAt(int row, int col) const
{
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_)
        panic("Mesh2D: coordinates (%d, %d) outside %dx%d",
              row, col, rows_, cols_);
    return row * cols_ + col;
}

void
Mesh2D::route(int src, int dst, std::vector<LinkId> &out) const
{
    checkNode(src);
    checkNode(dst);
    auto [row, col] = coords(src);
    auto [drow, dcol] = coords(dst);

    // X first: correct the column.
    while (col != dcol) {
        int node = nodeAt(row, col);
        if (col < dcol) {
            out.push_back(linkFrom(node, PosX));
            ++col;
        } else {
            out.push_back(linkFrom(node, NegX));
            --col;
        }
    }
    // Then Y: correct the row.
    while (row != drow) {
        int node = nodeAt(row, col);
        if (row < drow) {
            out.push_back(linkFrom(node, PosY));
            ++row;
        } else {
            out.push_back(linkFrom(node, NegY));
            --row;
        }
    }
}

std::string
Mesh2D::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "mesh2d %dx%d", rows_, cols_);
    return buf;
}

} // namespace ccsim::net
