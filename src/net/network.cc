#include "net/network.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ccsim::net {

Network::Network(std::unique_ptr<Topology> topo, const NetworkParams &params)
    : topo_(std::move(topo)), params_(params)
{
    if (!topo_)
        panic("Network: null topology");
    if (params_.link_bandwidth_mbs <= 0)
        fatal("Network: link bandwidth must be positive, got %g MB/s",
              params_.link_bandwidth_mbs);
    if (params_.hop_latency < 0 || params_.packet_overhead < 0)
        fatal("Network: negative hop latency or packet overhead");
    link_free_.assign(topo_->numLinks(), 0);
    link_busy_.assign(topo_->numLinks(), 0);
    route_cache_.resize(static_cast<std::size_t>(topo_->numNodes()) *
                        static_cast<std::size_t>(topo_->numNodes()));
}

const RouteVec &
Network::cachedRoute(int src, int dst)
{
    if (src == dst)
        panic("Network::cachedRoute: no route from node %d to itself",
              src);
    std::size_t slot = static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(topo_->numNodes()) +
                       static_cast<std::size_t>(dst);
    if (slot >= route_cache_.size())
        panic("Network::cachedRoute: node out of range (%d -> %d)", src,
              dst);
    RouteVec &path = route_cache_[slot];
    if (path.empty()) {
        ++route_misses_;
        // Topology::route appends into a plain vector; compute into a
        // reusable scratch and copy exact-size into pooled storage so
        // a fresh Machine's route misses stop hitting the heap (the
        // copies come from blocks the previous Machine parked).
        static thread_local std::vector<LinkId> scratch;
        scratch.clear();
        topo_->route(src, dst, scratch);
        if (scratch.empty())
            panic("Network::cachedRoute: empty route from %d to %d", src,
                  dst);
        path.assign(scratch.begin(), scratch.end());
    } else {
        ++route_hits_;
    }
    return path;
}

Time
Network::transfer(int src, int dst, Bytes bytes, Time now)
{
    if (src == dst)
        panic("Network::transfer: self-send on node %d must not touch "
              "the network", src);
    if (bytes < 0)
        panic("Network::transfer: negative size %lld",
              static_cast<long long>(bytes));

    const RouteVec &path = cachedRoute(src, dst);

    Bytes wire = bytes + params_.packet_overhead;
    Time ser = transferTime(wire, params_.link_bandwidth_mbs);

    Time start = now;
    LinkId constraining = -1;
    if (params_.contention)
        for (LinkId l : path)
            if (link_free_[static_cast<size_t>(l)] > start) {
                start = link_free_[static_cast<size_t>(l)];
                constraining = l;
            }

    if (slowdown_hook_) {
        // A degraded link slows the whole cut-through worm: the
        // serialisation rate is set by the slowest link on the route.
        double worst = 1.0;
        for (LinkId l : path)
            worst = std::max(worst, slowdown_hook_(l, start));
        if (worst > 1.0)
            ser = static_cast<Time>(
                std::llround(static_cast<double>(ser) * worst));
    }

    if (params_.contention)
        for (LinkId l : path)
            link_free_[static_cast<size_t>(l)] = start + ser;
    for (LinkId l : path)
        link_busy_[static_cast<size_t>(l)] += ser;

    ++messages_;
    total_bytes_ += bytes;
    total_link_busy_ += ser * static_cast<Time>(path.size());

    if (counters_) {
        for (LinkId l : path)
            counters_->bytes[static_cast<size_t>(l)] += bytes;
        if (constraining >= 0) {
            // The wait from arrival to grant, charged to the link
            // whose occupancy set the start time — "who is the
            // bottleneck", the paper's contention question.
            Time stall = start - now;
            counters_->stall[static_cast<size_t>(constraining)] += stall;
            counters_->total_stall += stall;
            ++counters_->stalled_transfers;
        }
    }

    Time hops_delay =
        params_.hop_latency * static_cast<Time>(path.size());
    return start + hops_delay + ser;
}

Time
Network::transferVia(int src, int via, int dst, Bytes bytes, Time now)
{
    if (via == src || via == dst)
        panic("Network::transferVia: intermediate %d must differ from "
              "endpoints %d -> %d", via, src, dst);
    Time relay = transfer(src, via, bytes, now);
    return transfer(via, dst, bytes, relay);
}

Network::Utilization
Network::utilization(Time horizon) const
{
    Utilization u;
    if (horizon <= 0)
        return u;
    double sum = 0.0;
    for (std::size_t i = 0; i < link_free_.size(); ++i) {
        Time busy = std::min(link_free_[i], horizon);
        if (busy <= 0)
            continue;
        ++u.links_used;
        double frac = static_cast<double>(busy) /
                      static_cast<double>(horizon);
        sum += frac;
        if (frac > u.max) {
            u.max = frac;
            u.hottest = static_cast<LinkId>(i);
        }
    }
    if (!link_free_.empty())
        u.mean = sum / static_cast<double>(link_free_.size());
    return u;
}

Network::Utilization
Network::exactUtilization(Time horizon) const
{
    Utilization u;
    if (horizon <= 0)
        return u;
    double sum = 0.0;
    for (std::size_t i = 0; i < link_busy_.size(); ++i) {
        Time busy = std::min(link_busy_[i], horizon);
        if (busy <= 0)
            continue;
        ++u.links_used;
        double frac = static_cast<double>(busy) /
                      static_cast<double>(horizon);
        sum += frac;
        if (frac > u.max) {
            u.max = frac;
            u.hottest = static_cast<LinkId>(i);
        }
    }
    if (!link_busy_.empty())
        u.mean = sum / static_cast<double>(link_busy_.size());
    return u;
}

void
Network::enableCounters()
{
    if (counters_)
        return;
    counters_ = std::make_unique<LinkCounters>();
    counters_->bytes.assign(topo_->numLinks(), 0);
    counters_->stall.assign(topo_->numLinks(), 0);
}

void
Network::resetCounters()
{
    if (!counters_)
        return;
    std::fill(counters_->bytes.begin(), counters_->bytes.end(), 0);
    std::fill(counters_->stall.begin(), counters_->stall.end(), 0);
    counters_->total_stall = 0;
    counters_->stalled_transfers = 0;
}

void
Network::reset()
{
    std::fill(link_free_.begin(), link_free_.end(), 0);
    std::fill(link_busy_.begin(), link_busy_.end(), 0);
    for (auto &path : route_cache_)
        path.clear();
    route_hits_ = 0;
    route_misses_ = 0;
    messages_ = 0;
    total_bytes_ = 0;
    total_link_busy_ = 0;
    resetCounters();
}

} // namespace ccsim::net
