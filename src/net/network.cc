#include "net/network.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ccsim::net {

Network::Network(std::unique_ptr<Topology> topo, const NetworkParams &params)
    : topo_(std::move(topo)), params_(params)
{
    if (!topo_)
        panic("Network: null topology");
    if (params_.link_bandwidth_mbs <= 0)
        fatal("Network: link bandwidth must be positive, got %g MB/s",
              params_.link_bandwidth_mbs);
    if (params_.hop_latency < 0 || params_.packet_overhead < 0)
        fatal("Network: negative hop latency or packet overhead");
    link_free_.reset(topo_->numLinks());
    link_busy_.reset(topo_->numLinks());
    class_params_.assign(
        static_cast<std::size_t>(topo_->numLinkClasses()), params_);
    classed_ = topo_->numLinkClasses() > 1;
}

void
Network::setLinkClassParams(int cls, const NetworkParams &p)
{
    if (cls < 0 || cls >= static_cast<int>(class_params_.size()))
        panic("Network::setLinkClassParams: topology '%s' has no "
              "link class %d (classes: %d)",
              topo_->name().c_str(), cls, topo_->numLinkClasses());
    if (p.link_bandwidth_mbs <= 0)
        fatal("Network: link class %d bandwidth must be positive, "
              "got %g MB/s",
              cls, p.link_bandwidth_mbs);
    if (p.hop_latency < 0 || p.packet_overhead < 0)
        fatal("Network: link class %d has negative hop latency or "
              "packet overhead",
              cls);
    class_params_[static_cast<std::size_t>(cls)] = p;
    if (cls == 0)
        params_ = p; // class 0 is the base wire
}

const NetworkParams &
Network::linkClassParams(int cls) const
{
    if (cls < 0 || cls >= static_cast<int>(class_params_.size()))
        panic("Network::linkClassParams: no link class %d", cls);
    return class_params_[static_cast<std::size_t>(cls)];
}

Time
Network::transfer(int src, int dst, Bytes bytes, Time now)
{
    if (src == dst)
        panic("Network::transfer: self-send on node %d must not touch "
              "the network", src);
    if (bytes < 0)
        panic("Network::transfer: negative size %lld",
              static_cast<long long>(bytes));

    ++route_walks_;

    // Uniform wiring: one serialisation time for the whole route.
    // Multi-class wiring computes the gating (slowest-link)
    // serialisation and per-class hop latency during the first walk.
    Time ser = classed_ ? 0
                        : transferTime(bytes + params_.packet_overhead,
                                       params_.link_bandwidth_mbs);
    Time hops_delay = 0;

    // Walk 1: route length and the contention window — the transfer
    // starts when every link on the route is free.
    Time start = now;
    LinkId constraining = -1;
    std::size_t path_len = 0;
    topo_->forEachLink(src, dst, [&](LinkId l) {
        ++path_len;
        if (classed_) {
            const NetworkParams &cp =
                class_params_[static_cast<std::size_t>(
                    topo_->linkClass(l))];
            ser = std::max(
                ser, transferTime(bytes + cp.packet_overhead,
                                  cp.link_bandwidth_mbs));
            hops_delay += cp.hop_latency;
        }
        if (params_.contention) {
            const Time f = link_free_.get(static_cast<std::size_t>(l));
            if (f > start) {
                start = f;
                constraining = l;
            }
        }
    });
    if (path_len == 0)
        panic("Network::transfer: empty route from %d to %d", src,
              dst);
    route_hops_ += path_len;
    if (!classed_)
        hops_delay =
            params_.hop_latency * static_cast<Time>(path_len);

    if (slowdown_hook_) {
        // A degraded link slows the whole cut-through worm: the
        // serialisation rate is set by the slowest link on the route.
        double worst = 1.0;
        topo_->forEachLink(src, dst, [&](LinkId l) {
            worst = std::max(worst, slowdown_hook_(l, start));
        });
        if (worst > 1.0)
            ser = static_cast<Time>(
                std::llround(static_cast<double>(ser) * worst));
    }

    // Walk 2 (3 with a slowdown hook): commit the reservation.
    topo_->forEachLink(src, dst, [&](LinkId l) {
        const auto i = static_cast<std::size_t>(l);
        if (params_.contention)
            link_free_.slot(i) = start + ser;
        link_busy_.slot(i) += ser;
        if (counters_)
            counters_->bytes.slot(i) += bytes;
    });

    ++messages_;
    total_bytes_ += bytes;
    total_link_busy_ += ser * static_cast<Time>(path_len);

    if (counters_ && constraining >= 0) {
        // The wait from arrival to grant, charged to the link whose
        // occupancy set the start time — "who is the bottleneck",
        // the paper's contention question.
        const Time stall = start - now;
        counters_->stall.slot(static_cast<std::size_t>(constraining)) +=
            stall;
        counters_->total_stall += stall;
        ++counters_->stalled_transfers;
    }

    return start + hops_delay + ser;
}

Time
Network::transferVia(int src, int via, int dst, Bytes bytes, Time now)
{
    if (via == src || via == dst)
        panic("Network::transferVia: intermediate %d must differ from "
              "endpoints %d -> %d", via, src, dst);
    Time relay = transfer(src, via, bytes, now);
    return transfer(via, dst, bytes, relay);
}

Network::Utilization
Network::utilization(Time horizon) const
{
    Utilization u;
    if (horizon <= 0)
        return u;
    double sum = 0.0;
    link_free_.forEach([&](std::size_t i, Time end) {
        Time busy = std::min(end, horizon);
        if (busy <= 0)
            return;
        ++u.links_used;
        double frac = static_cast<double>(busy) /
                      static_cast<double>(horizon);
        sum += frac;
        if (frac > u.max) {
            u.max = frac;
            u.hottest = static_cast<LinkId>(i);
        }
    });
    if (link_free_.size() > 0)
        u.mean = sum / static_cast<double>(link_free_.size());
    return u;
}

Network::Utilization
Network::exactUtilization(Time horizon) const
{
    Utilization u;
    if (horizon <= 0)
        return u;
    double sum = 0.0;
    link_busy_.forEach([&](std::size_t i, Time acc) {
        Time busy = std::min(acc, horizon);
        if (busy <= 0)
            return;
        ++u.links_used;
        double frac = static_cast<double>(busy) /
                      static_cast<double>(horizon);
        sum += frac;
        if (frac > u.max) {
            u.max = frac;
            u.hottest = static_cast<LinkId>(i);
        }
    });
    if (link_busy_.size() > 0)
        u.mean = sum / static_cast<double>(link_busy_.size());
    return u;
}

void
Network::enableCounters()
{
    if (counters_)
        return;
    counters_ = std::make_unique<LinkCounters>();
    counters_->bytes.reset(topo_->numLinks());
    counters_->stall.reset(topo_->numLinks());
}

void
Network::resetCounters()
{
    if (!counters_)
        return;
    counters_->bytes.clear();
    counters_->stall.clear();
    counters_->total_stall = 0;
    counters_->stalled_transfers = 0;
}

void
Network::reset()
{
    link_free_.clear();
    link_busy_.clear();
    route_walks_ = 0;
    route_hops_ = 0;
    messages_ = 0;
    total_bytes_ = 0;
    total_link_busy_ = 0;
    resetCounters();
}

} // namespace ccsim::net
