#include "net/torus3d.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Torus3D::Torus3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz)
{
    if (nx < 1 || ny < 1 || nz < 1)
        fatal("Torus3D: invalid dimensions %dx%dx%d", nx, ny, nz);
}

std::size_t
Torus3D::numLinks() const
{
    return static_cast<std::size_t>(numNodes()) * 6;
}

std::array<int, 3>
Torus3D::coords(int node) const
{
    checkNode(node);
    int x = node % nx_;
    int y = (node / nx_) % ny_;
    int z = node / (nx_ * ny_);
    return {x, y, z};
}

int
Torus3D::nodeAt(int x, int y, int z) const
{
    if (x < 0 || x >= nx_ || y < 0 || y >= ny_ || z < 0 || z >= nz_)
        panic("Torus3D: coordinates (%d, %d, %d) outside %dx%dx%d",
              x, y, z, nx_, ny_, nz_);
    return (z * ny_ + y) * nx_ + x;
}

int
Torus3D::ringStep(int from, int to, int size)
{
    if (from == to)
        return 0;
    int fwd = (to - from + size) % size;  // hops going +
    int bwd = size - fwd;                 // hops going -
    return fwd <= bwd ? 1 : -1;
}

void
Torus3D::startRoute(RouteCursor &cur, int src, int dst) const
{
    // Walk state: current coordinates in s[2..4], target in s[5..7].
    auto &s = state(cur);
    s[2] = src % nx_;
    s[3] = (src / nx_) % ny_;
    s[4] = src / (nx_ * ny_);
    s[5] = dst % nx_;
    s[6] = (dst / nx_) % ny_;
    s[7] = dst / (nx_ * ny_);
}

LinkId
Torus3D::stepRoute(RouteCursor &cur) const
{
    auto &s = state(cur);
    const int sizes[3] = {nx_, ny_, nz_};
    static constexpr Dir pos[3] = {PosX, PosY, PosZ};
    static constexpr Dir neg[3] = {NegX, NegY, NegZ};

    for (int dim = 0; dim < 3; ++dim) {
        std::int32_t &c = s[2 + dim];
        const int d = s[5 + dim];
        if (c == d)
            continue;
        int step = ringStep(c, d, sizes[dim]);
        int node = (s[4] * ny_ + s[3]) * nx_ + s[2];
        c = (c + step + sizes[dim]) % sizes[dim];
        return linkFrom(node, step > 0 ? pos[dim] : neg[dim]);
    }
    return kNoLink;
}

std::string
Torus3D::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "torus3d %dx%dx%d", nx_, ny_, nz_);
    return buf;
}

} // namespace ccsim::net
