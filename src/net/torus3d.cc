#include "net/torus3d.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Torus3D::Torus3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz)
{
    if (nx < 1 || ny < 1 || nz < 1)
        fatal("Torus3D: invalid dimensions %dx%dx%d", nx, ny, nz);
}

std::size_t
Torus3D::numLinks() const
{
    return static_cast<std::size_t>(numNodes()) * 6;
}

std::array<int, 3>
Torus3D::coords(int node) const
{
    checkNode(node);
    int x = node % nx_;
    int y = (node / nx_) % ny_;
    int z = node / (nx_ * ny_);
    return {x, y, z};
}

int
Torus3D::nodeAt(int x, int y, int z) const
{
    if (x < 0 || x >= nx_ || y < 0 || y >= ny_ || z < 0 || z >= nz_)
        panic("Torus3D: coordinates (%d, %d, %d) outside %dx%dx%d",
              x, y, z, nx_, ny_, nz_);
    return (z * ny_ + y) * nx_ + x;
}

int
Torus3D::ringStep(int from, int to, int size)
{
    if (from == to)
        return 0;
    int fwd = (to - from + size) % size;  // hops going +
    int bwd = size - fwd;                 // hops going -
    return fwd <= bwd ? 1 : -1;
}

void
Torus3D::route(int src, int dst, std::vector<LinkId> &out) const
{
    checkNode(src);
    checkNode(dst);
    auto c = coords(src);
    auto d = coords(dst);
    const int sizes[3] = {nx_, ny_, nz_};
    const Dir pos[3] = {PosX, PosY, PosZ};
    const Dir neg[3] = {NegX, NegY, NegZ};

    for (int dim = 0; dim < 3; ++dim) {
        while (c[dim] != d[dim]) {
            int step = ringStep(c[dim], d[dim], sizes[dim]);
            int node = nodeAt(c[0], c[1], c[2]);
            out.push_back(linkFrom(node, step > 0 ? pos[dim] : neg[dim]));
            c[dim] = (c[dim] + step + sizes[dim]) % sizes[dim];
        }
    }
}

std::string
Torus3D::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "torus3d %dx%dx%d", nx_, ny_, nz_);
    return buf;
}

} // namespace ccsim::net
