/**
 * @file
 * 3-D torus topology with dimension-order routing — the Cray T3D's
 * interconnect.  Each dimension has wraparound links; routing takes
 * the shorter way around each ring (positive direction on ties),
 * correcting X, then Y, then Z.
 */

#ifndef CCSIM_NET_TORUS3D_HH
#define CCSIM_NET_TORUS3D_HH

#include <array>

#include "net/topology.hh"

namespace ccsim::net {

/** nx x ny x nz torus; node id = (z * ny + y) * nx + x. */
class Torus3D : public Topology
{
  public:
    /** Construct a torus with the given positive dimensions. */
    Torus3D(int nx, int ny, int nz);

    int numNodes() const override { return nx_ * ny_ * nz_; }
    std::size_t numLinks() const override;
    std::string name() const override;

    /** Torus coordinates of @p node as {x, y, z}. */
    std::array<int, 3> coords(int node) const;

    /** Node id at (x, y, z). */
    int nodeAt(int x, int y, int z) const;

    /**
     * Signed minimal ring offset from @p from to @p to on a ring of
     * @p size (positive on ties).  Exposed for testing.
     */
    static int ringStep(int from, int to, int size);

  protected:
    void startRoute(RouteCursor &cur, int src, int dst) const override;
    LinkId stepRoute(RouteCursor &cur) const override;

  private:
    // Six directed link slots per node: +/- in each dimension.
    enum Dir { PosX = 0, NegX = 1, PosY = 2, NegY = 3, PosZ = 4, NegZ = 5 };

    LinkId
    linkFrom(int node, Dir d) const
    {
        return static_cast<LinkId>(node * 6 + d);
    }

    int nx_;
    int ny_;
    int nz_;
};

} // namespace ccsim::net

#endif // CCSIM_NET_TORUS3D_HH
