/**
 * @file
 * Dragonfly: the group/router/node hierarchical direct network of
 * modern extreme-scale machines (Cray XC Aries, Slingshot).  Routers
 * within a group are fully connected; groups are fully connected
 * through one global link per ordered group pair; each router hosts
 * n compute nodes on injection/ejection ports.
 *
 * Routing is minimal (shortest-path) and analytic: inject at the
 * source router, hop locally to the gateway router owning the global
 * link towards the destination group, cross it, hop locally to the
 * destination router, eject.  At most five links end to end, fixed
 * regardless of machine size — the property that makes dragonflies
 * interesting against the paper's O(sqrt p) meshes and O(log p)
 * multistage switches.
 *
 * The gateway for peer group index q is router q mod r, the standard
 * round-robin distribution of a group's g-1 global links over its r
 * routers.
 */

#ifndef CCSIM_NET_DRAGONFLY_HH
#define CCSIM_NET_DRAGONFLY_HH

#include <memory>

#include "net/topology.hh"

namespace ccsim::net {

/** Dragonfly(g groups; r routers/group; n nodes/router);
 *  node id = (group * r + router) * n + slot. */
class Dragonfly : public Topology
{
  public:
    /** Construct with @p groups >= 1 groups of @p routers >= 1
     *  routers carrying @p nodes >= 1 compute nodes each. */
    Dragonfly(int groups, int routers, int nodes);

    int numNodes() const override { return num_nodes_; }
    std::size_t numLinks() const override;
    std::string name() const override;

    int groups() const { return g_; }
    int routersPerGroup() const { return r_; }
    int nodesPerRouter() const { return n_; }

    /** A near-cubic dragonfly shape for @p p nodes (g >= r >= n). */
    static std::unique_ptr<Dragonfly> balancedFor(int p);

  protected:
    void startRoute(RouteCursor &cur, int src, int dst) const override;
    LinkId stepRoute(RouteCursor &cur) const override;

  private:
    /** Intra-group link from router @p a to router @p b of @p grp. */
    LinkId localLink(int grp, int a, int b) const;

    int g_, r_, n_;
    int num_nodes_;
    LinkId local_base_;  //!< first intra-group router-router link
    LinkId global_base_; //!< first inter-group link
    std::size_t num_links_;
};

} // namespace ccsim::net

#endif // CCSIM_NET_DRAGONFLY_HH
