/**
 * @file
 * FatTree: an L-level folded-Clos / extended generalized fat tree
 * (XGFT) with deterministic D-mod-k up-routing — the topology of
 * essentially every post-1997 large cluster (SP2's own successor
 * fabrics included), added so the paper's O(p) vs O(log p) scaling
 * story can be extrapolated to modern machines.
 *
 * Structure XGFT(L; d_1..d_L; u_1..u_L): compute nodes are the
 * N = d_1 * ... * d_L leaves; a level-l switch has d_l down-links and
 * u_{l+1} up-links; each level-(l-1) entity (leaf or switch) has u_l
 * parents.  u_l is the link multiplicity that gives the tree its
 * "fat" bisection: u_l = d_l is fully non-blocking at level l,
 * u_l = 1 is a plain tree.
 *
 * Routing is minimal and analytic: a message climbs to the lowest
 * common ancestor level m of src and dst and descends.  The up-path
 * at tier l uses parent digit c_l = (dst / (u_1...u_{l-1})) mod u_l —
 * destination-modulo-k, so the redundant parents share traffic
 * deterministically and any two messages to the same destination
 * converge (the classic D-mod-k property).  The down-path is unique.
 *
 * Link model: one directed link per (entity, parent digit) going up
 * and per (switch, child digit) going down; messages contend exactly
 * when their routes share a physical tree edge in the same direction.
 */

#ifndef CCSIM_NET_FAT_TREE_HH
#define CCSIM_NET_FAT_TREE_HH

#include <memory>
#include <vector>

#include "net/topology.hh"

namespace ccsim::net {

/** XGFT(L; down...; up...) fat tree; node id = mixed-radix leaf
 *  index, least-significant digit at the deepest level. */
class FatTree : public Topology
{
  public:
    /**
     * @param down  children per switch, deepest level first
     *              (d_1..d_L, each >= 2); the node count is their
     *              product
     * @param up    parents per entity below each level (u_1..u_L,
     *              each >= 1; u_1 is the leaf uplink multiplicity)
     */
    FatTree(std::vector<int> down, std::vector<int> up);

    int numNodes() const override { return num_nodes_; }
    std::size_t numLinks() const override;
    std::string name() const override;

    /** Number of switch levels L. */
    int levels() const { return static_cast<int>(down_.size()); }

    /** Switches at level @p l (1-based). */
    int switchesAt(int l) const;

    /** The lowest common ancestor level of two leaves (0 = same
     *  leaf); the route length is exactly twice this. */
    int commonLevel(int src, int dst) const;

    /** A balanced fat tree for @p p nodes: two levels up to 4096
     *  nodes, three beyond, near-equal radices from p's
     *  factorization, half-bisection above the leaf tier. */
    static std::unique_ptr<FatTree> balancedFor(int p);

  protected:
    void startRoute(RouteCursor &cur, int src, int dst) const override;
    LinkId stepRoute(RouteCursor &cur) const override;

  private:
    std::vector<int> down_; //!< d_1..d_L (index 0 = deepest)
    std::vector<int> up_;   //!< u_1..u_L
    std::vector<int> dprod_; //!< D_l = d_1..d_l, dprod_[0] = 1
    std::vector<int> uprod_; //!< U_l = u_1..u_l, uprod_[0] = 1
    std::vector<LinkId> up_base_;   //!< first up-link id of tier l
    std::vector<LinkId> down_base_; //!< first down-link id of tier l
    int num_nodes_;
    std::size_t num_links_;
};

} // namespace ccsim::net

#endif // CCSIM_NET_FAT_TREE_HH
