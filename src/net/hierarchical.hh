/**
 * @file
 * Hierarchical: a multi-core node model wrapped around any inner
 * topology.  The 1997 paper's machines had one rank per network
 * endpoint; modern machines hang chips * cores ranks off every
 * endpoint, and the first hops of a collective run over on-chip and
 * in-node fabrics that are orders of magnitude faster than the wire.
 *
 * Rank layout: rank = (node * chips + chip) * cores + core, so
 * consecutive ranks pack onto the same chip first (the MPI default
 * "by slot" placement).
 *
 * Link model (three classes, each with its own NetworkParams
 * override, see MachineConfig::hierarchy):
 *   class 1 — one shared link per chip (the on-chip interconnect);
 *   class 2 — one shared bus per node (memory bus / NIC path);
 *   class 0 — the inner topology's links (the wires between nodes).
 *
 * Routes: same chip -> [chip]; same node -> [chip, bus, chip'];
 * inter-node -> [chip, bus, inner-route..., bus', chip'].  The inner
 * route is walked analytically in place — the wrapper adds O(1)
 * cursor state (words 8..11) on top of the inner walk (words 0..7),
 * so routing stays O(hops) time / O(1) memory at any scale.
 */

#ifndef CCSIM_NET_HIERARCHICAL_HH
#define CCSIM_NET_HIERARCHICAL_HH

#include <memory>

#include "net/topology.hh"

namespace ccsim::net {

/** Multi-core endpoint wrapper: ranks = inner nodes * chips * cores. */
class Hierarchical : public Topology
{
  public:
    /**
     * @param inner  the inter-node topology (owned)
     * @param chips  chips per node, >= 1
     * @param cores  cores (ranks) per chip, >= 1
     */
    Hierarchical(std::unique_ptr<Topology> inner, int chips,
                 int cores);

    int numNodes() const override { return num_ranks_; }
    std::size_t numLinks() const override;
    std::string name() const override;

    int linkClass(LinkId l) const override;
    int numLinkClasses() const override { return 3; }

    const Topology &inner() const { return *inner_; }
    int chipsPerNode() const { return chips_; }
    int coresPerChip() const { return cores_; }

  protected:
    void startRoute(RouteCursor &cur, int src, int dst) const override;
    LinkId stepRoute(RouteCursor &cur) const override;

  private:
    std::unique_ptr<Topology> inner_;
    int chips_, cores_;
    int num_ranks_;
    LinkId chip_base_; //!< first per-chip link (class 1)
    LinkId bus_base_;  //!< first per-node bus link (class 2)
    std::size_t num_links_;
};

} // namespace ccsim::net

#endif // CCSIM_NET_HIERARCHICAL_HH
