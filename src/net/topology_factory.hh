/**
 * @file
 * makeTopology: build any topology from a compact spec string, the
 * one grammar shared by `--topo`, config files (`topology_spec`),
 * the serve wire protocol, and programmatic callers.
 *
 * Grammar (EBNF-ish; every parameter block is optional — an omitted
 * block picks a balanced shape for the requested node count):
 *
 * @verbatim
 *     spec      := "hier:" CHIPSxCORES "/" inner | inner
 *     inner     := family [ ":" params ]
 *     family    := mesh2d | torus3d | omega | hypercube
 *                | fully-connected | fattree | dragonfly
 *     mesh2d    params:  ROWSxCOLS            e.g. mesh2d:8x16
 *     torus3d   params:  XxYxZ                e.g. torus3d:8x4x4
 *     omega     params:  RADIX                e.g. omega:4
 *     dragonfly params:  GROUPSxROUTERSxNODES e.g. dragonfly:16x8x4
 *     fattree   params:  L;d1,..,dL;u1,..,uL  e.g. fattree:2;4,4;1,2
 * @endverbatim
 *
 * Explicit dimensions must multiply out to exactly the machine's
 * node count p; `hier:CxK/inner` gives the inner topology p/(C*K)
 * nodes and requires that division to be exact.  Malformed or
 * impossible specs raise ccsim::ConfigError (CLI exit code 5) with a
 * "did you mean" hint on misspelled family names.
 */

#ifndef CCSIM_NET_TOPOLOGY_FACTORY_HH
#define CCSIM_NET_TOPOLOGY_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "net/topology.hh"

namespace ccsim::net {

/** Build the topology described by @p spec for @p p nodes (ranks).
 *  ccsim::ConfigError on malformed specs; see the file comment for
 *  the grammar. */
std::unique_ptr<Topology> makeTopology(const std::string &spec, int p);

/** The valid family names, for help text and did-you-mean hints. */
const std::vector<std::string> &topologyFamilies();

} // namespace ccsim::net

#endif // CCSIM_NET_TOPOLOGY_FACTORY_HH
