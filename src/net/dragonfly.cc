#include "net/dragonfly.hh"

#include <climits>
#include <cstdio>

#include "util/logging.hh"

namespace ccsim::net {

Dragonfly::Dragonfly(int groups, int routers, int nodes)
    : g_(groups), r_(routers), n_(nodes)
{
    if (groups < 1 || routers < 1 || nodes < 1)
        fatal("Dragonfly: need positive shape, got %dx%dx%d", groups,
              routers, nodes);
    const long long N = 1LL * groups * routers * nodes;
    // Link id space: [0, N) injection, [N, 2N) ejection, then every
    // ordered intra-group router pair, then every ordered group pair.
    const long long locals = 1LL * groups * routers * (routers - 1);
    const long long globals = 1LL * groups * (groups - 1);
    if (2 * N + locals + globals > INT_MAX)
        fatal("Dragonfly: %dx%dx%d link ids overflow", groups,
              routers, nodes);
    num_nodes_ = static_cast<int>(N);
    local_base_ = static_cast<LinkId>(2 * N);
    global_base_ = static_cast<LinkId>(2 * N + locals);
    num_links_ = static_cast<std::size_t>(2 * N + locals + globals);
}

std::size_t
Dragonfly::numLinks() const
{
    return num_links_;
}

LinkId
Dragonfly::localLink(int grp, int a, int b) const
{
    return local_base_ + grp * r_ * (r_ - 1) + a * (r_ - 1) +
           (b > a ? b - 1 : b);
}

void
Dragonfly::startRoute(RouteCursor &cur, int src, int dst) const
{
    // Minimal routes are at most five links, so the whole route fits
    // in the cursor: s[2] = read position, s[3..7] = the links,
    // kNoLink-padded.
    auto &s = state(cur);
    const int sr = src / n_, dr = dst / n_; // global router indices
    const int sg = sr / r_, dg = dr / r_;
    int idx = 3;
    s[idx++] = static_cast<std::int32_t>(src); // injection
    if (sr != dr) {
        if (sg == dg) {
            s[idx++] = localLink(sg, sr % r_, dr % r_);
        } else {
            const int q = dg > sg ? dg - 1 : dg; // peer index of dg
            const int gw = q % r_; // gateway router towards dg
            if (sr % r_ != gw)
                s[idx++] = localLink(sg, sr % r_, gw);
            s[idx++] = global_base_ + sg * (g_ - 1) + q;
            const int q2 = sg > dg ? sg - 1 : sg;
            const int entry = q2 % r_; // dg's router owning the link
            if (entry != dr % r_)
                s[idx++] = localLink(dg, entry, dr % r_);
        }
    }
    s[idx++] = static_cast<std::int32_t>(num_nodes_ + dst); // ejection
    while (idx <= 7)
        s[idx++] = kNoLink;
    s[2] = 3;
}

LinkId
Dragonfly::stepRoute(RouteCursor &cur) const
{
    auto &s = state(cur);
    if (s[2] > 7)
        return kNoLink;
    const LinkId l = s[s[2]];
    if (l == kNoLink)
        return kNoLink;
    ++s[2];
    return l;
}

std::unique_ptr<Dragonfly>
Dragonfly::balancedFor(int p)
{
    if (p < 1)
        fatal("Dragonfly: need at least 1 node, got %d", p);
    auto [nx, ny, nz] = torusDimsFor(p);
    return std::make_unique<Dragonfly>(nx, ny, nz);
}

std::string
Dragonfly::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "dragonfly %dg x %dr x %dn", g_,
                  r_, n_);
    return buf;
}

} // namespace ccsim::net
