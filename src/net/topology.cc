#include "net/topology.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ccsim::net {

int
Topology::hops(int src, int dst) const
{
    std::vector<LinkId> p;
    route(src, dst, p);
    return static_cast<int>(p.size());
}

int
Topology::diameter() const
{
    int d = 0;
    int n = numNodes();
    for (int s = 0; s < n; ++s)
        for (int t = 0; t < n; ++t)
            if (s != t)
                d = std::max(d, hops(s, t));
    return d;
}

void
Topology::checkNode(int node) const
{
    if (node < 0 || node >= numNodes())
        panic("topology %s: node %d out of range [0, %d)",
              name().c_str(), node, numNodes());
}

namespace {

bool
isPowerOfTwo(int p)
{
    return p > 0 && (p & (p - 1)) == 0;
}

} // namespace

std::pair<int, int>
meshDimsFor(int p)
{
    if (!isPowerOfTwo(p))
        fatal("meshDimsFor: %d is not a power of two", p);
    // Split the exponent as evenly as possible; wider than tall,
    // matching how Paragon cabinets were laid out.
    int e = 0;
    while ((1 << e) < p)
        ++e;
    int ce = (e + 1) / 2; // cols exponent (the larger half)
    int re = e - ce;
    return {1 << re, 1 << ce};
}

std::array<int, 3>
torusDimsFor(int p)
{
    if (!isPowerOfTwo(p))
        fatal("torusDimsFor: %d is not a power of two", p);
    int e = 0;
    while ((1 << e) < p)
        ++e;
    // Distribute the exponent across z, y, x as evenly as possible,
    // giving the extra factors to x first (e.g. 128 -> 8x4x4).
    int ex = (e + 2) / 3;
    int ey = (e - ex + 1) / 2;
    int ez = e - ex - ey;
    return {1 << ex, 1 << ey, 1 << ez};
}

} // namespace ccsim::net
