#include "net/topology.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/logging.hh"

namespace ccsim::net {

RouteCursor
Topology::routeFrom(int src, int dst) const
{
    checkNode(src);
    checkNode(dst);
    RouteCursor cur;
    if (src == dst)
        return cur; // exhausted: self-routes are empty
    cur.topo_ = this;
    cur.s[0] = src;
    cur.s[1] = dst;
    startRoute(cur, src, dst);
    return cur;
}

std::vector<LinkId>
Topology::routeVector(int src, int dst) const
{
    std::vector<LinkId> out;
    forEachLink(src, dst, [&](LinkId l) { out.push_back(l); });
    return out;
}

int
Topology::hops(int src, int dst) const
{
    int n = 0;
    forEachLink(src, dst, [&](LinkId) { ++n; });
    return n;
}

int
Topology::diameter() const
{
    int d = 0;
    int n = numNodes();
    for (int s = 0; s < n; ++s)
        for (int t = 0; t < n; ++t)
            if (s != t)
                d = std::max(d, hops(s, t));
    return d;
}

void
Topology::checkNode(int node) const
{
    if (node < 0 || node >= numNodes())
        panic("topology %s: node %d out of range [0, %d)",
              name().c_str(), node, numNodes());
}

std::pair<int, int>
meshDimsFor(int p)
{
    if (p < 1)
        fatal("meshDimsFor: need a positive node count, got %d", p);
    // Largest divisor at or below sqrt(p) becomes the row count, so
    // the mesh is as square as p's factorization allows and wider
    // than tall — power-of-two sizes keep the shapes the Paragon
    // cabinets had (8 -> 2x4, 128 -> 8x16).
    int r = static_cast<int>(
        std::round(std::sqrt(static_cast<double>(p))));
    while (r * r > p)
        --r; // floor against floating-point drift on perfect squares
    while (r > 1 && p % r != 0)
        --r;
    return {r, p / r};
}

std::array<int, 3>
torusDimsFor(int p)
{
    if (p < 1)
        fatal("torusDimsFor: need a positive node count, got %d", p);
    // Peel the largest divisor at or below cbrt(p) off as z, then
    // split the rest near-square; extra factors go to x first
    // (e.g. 128 -> 8x4x4, matching the historical power-of-two
    // shapes).
    int nz = static_cast<int>(
        std::round(std::cbrt(static_cast<double>(p))));
    while (nz * nz * nz > p)
        --nz; // floor against floating-point drift on perfect cubes
    while (nz > 1 && p % nz != 0)
        --nz;
    auto [ny, nx] = meshDimsFor(p / nz);
    std::array<int, 3> d{nx, ny, nz};
    // A prime residue can leave ny < nz (e.g. 26 -> 13x1x2); restore
    // the documented nx >= ny >= nz.  No-op for every power of two,
    // so the historical shapes are untouched.
    std::sort(d.begin(), d.end(), std::greater<>());
    return d;
}

} // namespace ccsim::net
