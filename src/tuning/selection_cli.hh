/**
 * @file
 * The one command-line selection surface: every binary that lets the
 * user pick a collective algorithm declares the same `--algo` /
 * `--selection` pair through these helpers, so the CLI subcommands
 * and the benches cannot drift apart in spelling or semantics.
 *
 *  - `--algo <name|auto|default>` picks the per-call algorithm;
 *    "auto" (the default) resolves through the machine's selection
 *    table, "default" forces the machine's configured 1997 choice.
 *  - `--selection <preset|file>` attaches a selection table to the
 *    machine: a built-in fixed table by machine name (SP2, T3D,
 *    Paragon) or a file saved by `ccsim tune`.
 *
 * This pair replaces the bench-local algorithm flags that used to be
 * declared per binary (see docs/EXTENDING.md for the mapping).
 */

#ifndef CCSIM_TUNING_SELECTION_CLI_HH
#define CCSIM_TUNING_SELECTION_CLI_HH

#include "machine/machine_config.hh"
#include "util/cli.hh"

namespace ccsim::tuning {

/** Declare `--algo` and `--selection` on @p o. */
void addSelectionOpts(cli::Options &o);

/** The parsed `--algo` (default "auto"); ConfigError on bad names. */
machine::Algo algoOpt(const cli::Options &o);

/** Attach `--selection` to @p cfg (no-op when absent). */
void applySelectionOpts(const cli::Options &o,
                        machine::MachineConfig &cfg);

} // namespace ccsim::tuning

#endif // CCSIM_TUNING_SELECTION_CLI_HH
