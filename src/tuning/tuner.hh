/**
 * @file
 * The empirical tuner: derive a SelectionTable for one machine by
 * measuring every candidate algorithm over a (p, m) grid and keeping
 * the winners, the way Open MPI's tuned component was itself derived
 * from exhaustive benchmark sweeps.
 *
 * The sweep runs on the harness worker pool (SweepRunner), so it
 * parallelizes like every figure bench, and it sits ABOVE the
 * measurement memo cache: every (cfg, p, op, m, algo) point the tuner
 * simulates is exactly a point the figure benches and the model fits
 * also simulate, so a tune after a sweep (or vice versa) is mostly
 * cache hits.  That is also why the tuner measures explicit
 * algorithms only — Auto is resolved before the memo key exists, so
 * a tuned table can never pollute the cache it is derived from.
 *
 * Results are deterministic at any --jobs level (SweepRunner returns
 * results in spec order and ties break by candidate order), so a
 * tuned table is a reproducible artifact worth committing.
 */

#ifndef CCSIM_TUNING_TUNER_HH
#define CCSIM_TUNING_TUNER_HH

#include <vector>

#include "harness/measure.hh"
#include "machine/machine_config.hh"
#include "tuning/selection_table.hh"

namespace ccsim::tuning {

/** The (op, p, m) grid a tune sweeps, and the procedure knobs. */
struct TuneGrid
{
    /** Collectives to tune; empty = all of them. */
    std::vector<machine::Coll> ops;

    /** Machine sizes; empty = the machine's paper sweep. */
    std::vector<int> sizes;

    /** Message lengths; empty = the paper sweep.  Barrier ignores
     *  the length axis, as everywhere else. */
    std::vector<Bytes> lengths;

    harness::MeasureOptions options;
};

/**
 * One grid point's verdict: what the machine's configured default
 * costs there versus the empirical best candidate.
 */
struct RegretCell
{
    machine::Coll op = machine::Coll::Barrier;
    int p = 2;
    Bytes m = 0;

    machine::Algo default_algo = machine::Algo::Default;
    machine::Algo best_algo = machine::Algo::Default;

    Time default_time = 0;
    Time best_time = 0;

    /** Time the default left on the table, as a fraction of the
     *  best ([0, inf); 0 when the default already wins). */
    double
    regret() const
    {
        if (best_time <= 0)
            return 0.0;
        return static_cast<double>(default_time - best_time) /
               static_cast<double>(best_time);
    }
};

/** A tune's output: the winning table plus the regret evidence. */
struct TuneResult
{
    SelectionTable table;
    std::vector<RegretCell> cells; //!< grid order: op, p, m

    /** Summed default-vs-best times over the whole grid — the
     *  headline "how much did 1997's defaults leave on the table". */
    Time total_default = 0;
    Time total_best = 0;

    double
    totalRegret() const
    {
        if (total_best <= 0)
            return 0.0;
        return static_cast<double>(total_default - total_best) /
               static_cast<double>(total_best);
    }

    /** The cell with the largest individual regret (grid order
     *  breaks ties); cells must be non-empty. */
    const RegretCell &worstCell() const;
};

/**
 * The algorithms worth trying for @p op on a machine described by
 * @p cfg: every algorithm the collective's implementation supports,
 * minus hardware paths the machine lacks (Algo::Hardware requires
 * cfg.hardware_barrier).  Order is fixed and meaningful — the tuner
 * breaks exact ties by it, so it starts with the machine's
 * configured default (a challenger must strictly beat the incumbent).
 */
std::vector<machine::Algo> candidateAlgos(
    const machine::MachineConfig &cfg, machine::Coll op);

/**
 * Tune @p cfg over @p grid: measure every candidate on every (op, p,
 * m) point using @p jobs worker threads (0 = hardware concurrency),
 * pick per-point winners, and compress the winner map into a
 * piecewise SelectionTable (rules only where the winner changes
 * along the m axis, rows only where a p differs from the previous
 * row).  Any selection table already attached to @p cfg is ignored:
 * the tuner measures explicit algorithms only.
 *
 * Fault-conditioned tuning: when @p cfg carries an enabled
 * FaultSpec, the tuner builds decision maps for the *degraded*
 * machine — every candidate of a cell is measured under the same
 * derived fault universe (distinct universes across cells), a
 * candidate that raises FaultError is ranked last in its cell
 * instead of aborting the tune, and with grid.options.ensemble > 1
 * candidates are ranked by (ensemble failures, mean makespan).
 * Pair it with a clean tune of the same grid to see where the 1997
 * clean-condition winners flip under faults (bench/
 * ablation_resilience).
 */
TuneResult tuneMachine(const machine::MachineConfig &cfg,
                       const TuneGrid &grid = {}, int jobs = 0);

} // namespace ccsim::tuning

#endif // CCSIM_TUNING_TUNER_HH
