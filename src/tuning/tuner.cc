#include "tuning/tuner.hh"

#include <algorithm>

#include "fault/fault_report.hh"
#include "fault/fault_spec.hh"
#include "harness/sweep.hh"
#include "util/logging.hh"

namespace ccsim::tuning {

using machine::Algo;
using machine::Coll;

namespace {

/** What each collective core's dispatch switch accepts. */
std::vector<Algo>
supportedAlgos(Coll op)
{
    switch (op) {
      case Coll::Barrier:
        return {Algo::Linear, Algo::Binomial, Algo::Dissemination,
                Algo::Hardware};
      case Coll::Bcast:
        return {Algo::Linear, Algo::Binomial, Algo::ScatterAllgather,
                Algo::Pipelined};
      case Coll::Gather:
      case Coll::Scatter:
      case Coll::Reduce:
        return {Algo::Linear, Algo::Binomial};
      case Coll::Allgather:
        return {Algo::Ring, Algo::RecursiveDoubling};
      case Coll::Alltoall:
        return {Algo::Linear, Algo::Pairwise, Algo::Bruck};
      case Coll::Allreduce:
        return {Algo::ReduceBcast, Algo::RecursiveDoubling,
                Algo::Rabenseifner};
      case Coll::ReduceScatter:
        return {Algo::Linear, Algo::RecursiveHalving, Algo::Pairwise};
      case Coll::Scan:
        return {Algo::Linear, Algo::RecursiveDoubling};
      default:
        panic("supportedAlgos: bad collective %d",
              static_cast<int>(op));
    }
}

/** One row of the winner map: the best algorithm per length. */
struct WinnerRow
{
    int p = 2;
    std::vector<Algo> winners; // parallel to the length axis
};

/**
 * Compress one collective's winner map into piecewise rules: along
 * m, a rule only where the winner changes (first segment at m >= 0);
 * along p, a row only where its segments differ from the previous
 * row's.  Rows with larger p_min shadow earlier ones, so each
 * emitted row fully describes its p range on its own.
 */
void
emitRules(SelectionTable &table, Coll op,
          const std::vector<WinnerRow> &rows,
          const std::vector<Bytes> &lengths)
{
    std::vector<std::pair<Bytes, Algo>> prev;
    for (const WinnerRow &row : rows) {
        std::vector<std::pair<Bytes, Algo>> segs;
        for (std::size_t j = 0; j < row.winners.size(); ++j) {
            Bytes m_min = j == 0 ? 0 : lengths[j];
            if (segs.empty() || segs.back().second != row.winners[j])
                segs.emplace_back(m_min, row.winners[j]);
        }
        if (segs == prev)
            continue;
        for (const auto &[m_min, algo] : segs)
            table.addRule(op, {row.p, m_min, algo});
        prev = segs;
    }
}

} // namespace

const RegretCell &
TuneResult::worstCell() const
{
    if (cells.empty())
        panic("TuneResult::worstCell: no cells");
    const RegretCell *worst = &cells.front();
    for (const RegretCell &c : cells)
        if (c.regret() > worst->regret())
            worst = &c;
    return *worst;
}

std::vector<Algo>
candidateAlgos(const machine::MachineConfig &cfg, Coll op)
{
    std::vector<Algo> algos = supportedAlgos(op);
    if (!cfg.hardware_barrier)
        algos.erase(std::remove(algos.begin(), algos.end(),
                                Algo::Hardware),
                    algos.end());

    // Incumbent first: the tuner breaks exact ties by order, so a
    // challenger must strictly beat the machine's configured choice.
    Algo incumbent = cfg.algorithmFor(op);
    auto it = std::find(algos.begin(), algos.end(), incumbent);
    if (it != algos.end())
        std::rotate(algos.begin(), it, it + 1);
    return algos;
}

TuneResult
tuneMachine(const machine::MachineConfig &cfg, const TuneGrid &grid,
            int jobs)
{
    machine::MachineConfig base = cfg;
    base.selection.reset(); // explicit algorithms only (see file doc)

    std::vector<Coll> ops = grid.ops;
    if (ops.empty())
        ops.assign(machine::kAllColls.begin(),
                   machine::kAllColls.end());

    std::vector<int> sizes = grid.sizes.empty()
                                 ? harness::paperMachineSizes(cfg.name)
                                 : grid.sizes;
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());

    std::vector<Bytes> lengths =
        grid.lengths.empty() ? harness::paperMessageLengths()
                             : grid.lengths;
    std::sort(lengths.begin(), lengths.end());
    lengths.erase(std::unique(lengths.begin(), lengths.end()),
                  lengths.end());

    // One flat point list over ops x p x m x candidates, so the
    // whole tune is a single maximally-parallel pool batch.
    struct CellRef
    {
        Coll op;
        int p;
        Bytes m;
        std::size_t first;  // index of candidate 0's point
        std::size_t count;  // number of candidates
    };
    const std::vector<Bytes> barrier_lengths{0};
    const bool faulty = base.fault.enabled();
    std::vector<harness::SweepPoint> points;
    std::vector<CellRef> refs;
    for (Coll op : ops) {
        std::vector<Algo> candidates = candidateAlgos(base, op);
        const std::vector<Bytes> &ms =
            op == Coll::Barrier ? barrier_lengths : lengths;
        for (int p : sizes) {
            for (Bytes m : ms) {
                refs.push_back({op, p, m, points.size(),
                                candidates.size()});
                // Fault-conditioned tuning: every candidate of a
                // cell faces the SAME fault universe (apples-to-
                // apples ranking), while each cell gets its own
                // derived universe — the tuner calls run(points)
                // directly, so it must do the per-cell salting that
                // SweepSpec::expand does per point.
                std::uint64_t cell_seed =
                    faulty ? fault::mixSeed(base.fault.seed,
                                            0x74756e65ULL + // "tune"
                                                refs.size())
                           : 0;
                for (Algo a : candidates) {
                    points.push_back(
                        {base, p, op, m, a, grid.options});
                    if (faulty)
                        points.back().cfg.fault.seed = cell_seed;
                }
            }
        }
    }

    harness::SweepRunner runner(jobs);
    std::vector<harness::Measurement> results(points.size());
    std::vector<char> failed(points.size(), 0);
    if (faulty) {
        // Under fault injection a candidate can die with FaultError
        // (fail_fast / retry_escalate policies).  That is signal,
        // not an abort: the candidate is ranked last in its cell
        // instead of killing the whole batch.
        runner.runTasks(points.size(), [&](std::size_t i) {
            const harness::SweepPoint &pt = points[i];
            try {
                results[i] = harness::measureCollective(
                    pt.cfg, pt.p, pt.op, pt.m, pt.algo, pt.options);
            } catch (const fault::FaultError &) {
                failed[i] = 1;
            }
        });
    } else {
        results = runner.run(points);
    }

    TuneResult out;
    out.table.setMachine(cfg.name);

    std::size_t ref_idx = 0;
    for (Coll op : ops) {
        const std::vector<Bytes> &ms =
            op == Coll::Barrier ? barrier_lengths : lengths;
        std::vector<WinnerRow> rows;
        for (int p : sizes) {
            WinnerRow row;
            row.p = p;
            for (std::size_t j = 0; j < ms.size(); ++j) {
                const CellRef &ref = refs[ref_idx++];

                // Winner: strictly fastest; ties keep the earlier
                // candidate (the incumbent is candidate 0), which is
                // what makes tune output deterministic and minimal.
                // Under faults, reliability ranks before speed: a
                // candidate with fewer failed ensemble members (or
                // that did not die outright) beats a faster one that
                // failed more.
                auto better = [&](std::size_t a, std::size_t b) {
                    if (failed[a] != failed[b])
                        return failed[a] == 0;
                    if (failed[a])
                        return false;
                    const harness::Measurement &ra = results[a];
                    const harness::Measurement &rb = results[b];
                    if (ra.ensemble_failures != rb.ensemble_failures)
                        return ra.ensemble_failures <
                               rb.ensemble_failures;
                    return ra.max_time < rb.max_time;
                };
                std::size_t best = 0;
                for (std::size_t k = 1; k < ref.count; ++k)
                    if (better(ref.first + k, ref.first + best))
                        best = k;

                RegretCell cell;
                cell.op = op;
                cell.p = p;
                cell.m = ref.m;
                cell.default_algo = points[ref.first].algo;
                cell.best_algo = points[ref.first + best].algo;
                cell.default_time = results[ref.first].max_time;
                cell.best_time = results[ref.first + best].max_time;
                out.total_default += cell.default_time;
                out.total_best += cell.best_time;
                out.cells.push_back(cell);

                row.winners.push_back(cell.best_algo);
            }
            rows.push_back(std::move(row));
        }
        emitRules(out.table, op, rows, ms);
    }
    return out;
}

} // namespace ccsim::tuning
