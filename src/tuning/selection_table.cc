#include "tuning/selection_table.hh"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <fstream>
#include <sstream>

#include "machine/config_io.hh"
#include "util/logging.hh"

namespace ccsim::tuning {

using machine::Algo;
using machine::Coll;
using machine::ConfigError;

namespace {

/** fatal() analogue raising ConfigError, as in machine/config_io. */
[[noreturn]] void
configFatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void
configFatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrFormat(fmt, ap);
    va_end(ap);
    raiseError(ConfigError(msg));
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
ruleLess(const SelectionRule &a, const SelectionRule &b)
{
    return a.p_min != b.p_min ? a.p_min < b.p_min : a.m_min < b.m_min;
}

Coll
collByKey(const std::string &key, int lineno)
{
    for (Coll op : machine::kAllColls)
        if (machine::collKey(op) == key)
            return op;
    configFatal("selection line %d: unknown collective '%s'", lineno,
                key.c_str());
}

/** Parse "p>=N" / "m>=M" with a non-negative integer bound. */
long long
parseBound(const std::string &token, const char *prefix, int lineno)
{
    std::string pre(prefix);
    if (token.compare(0, pre.size(), pre) != 0)
        configFatal("selection line %d: expected '%s<int>', got '%s'",
                    lineno, prefix, token.c_str());
    std::string num = token.substr(pre.size());
    try {
        std::size_t pos = 0;
        long long v = std::stoll(num, &pos);
        if (pos != num.size() || v < 0)
            throw std::invalid_argument("bad");
        return v;
    } catch (const std::exception &) {
        configFatal("selection line %d: bad bound '%s'", lineno,
                    token.c_str());
    }
}

} // namespace

void
SelectionTable::addRule(Coll op, const SelectionRule &rule)
{
    if (rule.p_min < 2)
        configFatal("selection rule for %s: p>=%d is below the "
                    "smallest communicator (p>=2)",
                    machine::collKey(op).c_str(), rule.p_min);
    if (rule.m_min < 0)
        configFatal("selection rule for %s: negative message-length "
                    "bound m>=%lld", machine::collKey(op).c_str(),
                    static_cast<long long>(rule.m_min));
    if (rule.algo == Algo::Default || rule.algo == Algo::Auto)
        configFatal("selection rule for %s: target algorithm must be "
                    "concrete, not '%s'", machine::collKey(op).c_str(),
                    algoName(rule.algo).c_str());

    auto &rules = rules_[static_cast<size_t>(op)];
    auto pos = std::lower_bound(rules.begin(), rules.end(), rule,
                                ruleLess);
    if (pos != rules.end() && pos->p_min == rule.p_min &&
        pos->m_min == rule.m_min) {
        pos->algo = rule.algo; // same region: last writer wins
        return;
    }
    rules.insert(pos, rule);
}

const std::vector<SelectionRule> &
SelectionTable::rulesFor(Coll op) const
{
    return rules_[static_cast<size_t>(op)];
}

Algo
SelectionTable::choose(Coll op, int p, Bytes m) const
{
    // Rules are sorted ascending by (p_min, m_min), so the last
    // match is the most specific region containing (p, m).
    Algo best = Algo::Default;
    for (const SelectionRule &r : rules_[static_cast<size_t>(op)])
        if (p >= r.p_min && m >= r.m_min)
            best = r.algo;
    return best;
}

bool
SelectionTable::empty() const
{
    for (const auto &rules : rules_)
        if (!rules.empty())
            return false;
    return true;
}

bool
SelectionTable::operator==(const SelectionTable &o) const
{
    return machine_ == o.machine_ && rules_ == o.rules_;
}

void
SelectionTable::save(std::ostream &os) const
{
    os << "# ccsim algorithm selection table\n";
    os << "machine = " << machine_ << "\n";
    for (Coll op : machine::kAllColls) {
        const auto &rules = rules_[static_cast<size_t>(op)];
        if (rules.empty())
            continue;
        os << "\n";
        for (const SelectionRule &r : rules)
            os << machine::collKey(op) << ".rule = p>=" << r.p_min
               << " m>=" << r.m_min << " " << algoName(r.algo) << "\n";
    }
}

void
SelectionTable::saveFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        configFatal("cannot write '%s'", path.c_str());
    save(out);
}

SelectionTable
SelectionTable::load(std::istream &is)
{
    SelectionTable table;
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string s = line;
        auto hash = s.find('#');
        if (hash != std::string::npos)
            s = s.substr(0, hash);
        s = trim(s);
        if (s.empty())
            continue;

        auto eq = s.find('=');
        // "p>=2" contains '='; the key side never does, so the key
        // is everything before the first '=' that follows a space or
        // starts the value.  Simplest robust split: first '=' whose
        // left side has no '>' just before it.
        while (eq != std::string::npos && eq > 0 && s[eq - 1] == '>')
            eq = s.find('=', eq + 1);
        if (eq == std::string::npos)
            configFatal("selection line %d: expected 'key = value', "
                        "got '%s'", lineno, line.c_str());
        std::string key = trim(s.substr(0, eq));
        std::string value = trim(s.substr(eq + 1));
        if (key.empty() || value.empty())
            configFatal("selection line %d: empty key or value",
                        lineno);

        if (key == "machine") {
            table.machine_ = value;
            continue;
        }

        auto dot = key.find('.');
        if (dot == std::string::npos || key.substr(dot + 1) != "rule")
            configFatal("selection line %d: unknown key '%s' (expected "
                        "'machine' or '<op>.rule')", lineno,
                        key.c_str());
        Coll op = collByKey(key.substr(0, dot), lineno);

        std::istringstream vs(value);
        std::string ptok, mtok, atok, extra;
        vs >> ptok >> mtok >> atok;
        if (atok.empty() || (vs >> extra))
            configFatal("selection line %d: expected "
                        "'p>=<int> m>=<int> <algo>', got '%s'", lineno,
                        value.c_str());

        SelectionRule rule;
        rule.p_min = static_cast<int>(parseBound(ptok, "p>=", lineno));
        rule.m_min =
            static_cast<Bytes>(parseBound(mtok, "m>=", lineno));
        rule.algo = machine::algoFromName(atok);
        table.addRule(op, rule);
    }
    return table;
}

SelectionTable
SelectionTable::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        configFatal("cannot read '%s'", path.c_str());
    return load(in);
}

SelectionTable
fixedTable(const std::string &machine_name)
{
    std::string lower(machine_name);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));

    SelectionTable t;
    auto rule = [&t](Coll op, int p, Bytes m, Algo a) {
        t.addRule(op, {p, m, a});
    };

    if (lower == "sp2") {
        // SP2 (Section 4): the multistage switch gives uniform
        // point-to-point costs, so log-round algorithms win almost
        // everywhere; the paper's own observation that the vendor
        // binomial bcast loses to van de Geijn past the rendezvous
        // switch sets the 16 KB crossover.
        t.setMachine("SP2");
        rule(Coll::Barrier, 2, 0, Algo::Dissemination);
        rule(Coll::Bcast, 2, 0, Algo::Binomial);
        rule(Coll::Bcast, 2, 16384, Algo::ScatterAllgather);
        rule(Coll::Gather, 2, 0, Algo::Binomial);
        rule(Coll::Gather, 2, 4096, Algo::Linear);
        rule(Coll::Scatter, 2, 0, Algo::Binomial);
        rule(Coll::Scatter, 2, 4096, Algo::Linear);
        rule(Coll::Allgather, 2, 0, Algo::RecursiveDoubling);
        rule(Coll::Allgather, 2, 8192, Algo::Ring);
        rule(Coll::Alltoall, 2, 0, Algo::Bruck);
        rule(Coll::Alltoall, 2, 1024, Algo::Pairwise);
        rule(Coll::Reduce, 2, 0, Algo::Binomial);
        rule(Coll::Allreduce, 2, 0, Algo::RecursiveDoubling);
        rule(Coll::Allreduce, 2, 8192, Algo::Rabenseifner);
        rule(Coll::ReduceScatter, 2, 0, Algo::RecursiveHalving);
        rule(Coll::Scan, 2, 0, Algo::RecursiveDoubling);
    } else if (lower == "t3d") {
        // T3D (Section 5): the hardware AND-tree barrier is
        // unbeatable; high link bandwidth plus the BLT make
        // bandwidth-bound algorithms attractive earlier than on the
        // SP2 (lower crossovers).
        t.setMachine("T3D");
        rule(Coll::Barrier, 2, 0, Algo::Hardware);
        rule(Coll::Bcast, 2, 0, Algo::Binomial);
        rule(Coll::Bcast, 2, 8192, Algo::ScatterAllgather);
        rule(Coll::Gather, 2, 0, Algo::Binomial);
        rule(Coll::Gather, 2, 2048, Algo::Linear);
        rule(Coll::Scatter, 2, 0, Algo::Binomial);
        rule(Coll::Scatter, 2, 2048, Algo::Linear);
        rule(Coll::Allgather, 2, 0, Algo::RecursiveDoubling);
        rule(Coll::Allgather, 2, 4096, Algo::Ring);
        rule(Coll::Alltoall, 2, 0, Algo::Bruck);
        rule(Coll::Alltoall, 2, 512, Algo::Pairwise);
        rule(Coll::Reduce, 2, 0, Algo::Binomial);
        rule(Coll::Allreduce, 2, 0, Algo::RecursiveDoubling);
        rule(Coll::Allreduce, 2, 4096, Algo::Rabenseifner);
        rule(Coll::ReduceScatter, 2, 0, Algo::RecursiveHalving);
        rule(Coll::Scan, 2, 0, Algo::RecursiveDoubling);
    } else if (lower == "paragon") {
        // Paragon (Section 6): per-message software dominates (NX
        // overheads), so minimizing message count matters more than
        // on the other machines; the 2-D mesh also penalizes the
        // non-neighbor exchanges of recursive doubling at scale.
        t.setMachine("Paragon");
        rule(Coll::Barrier, 2, 0, Algo::Dissemination);
        rule(Coll::Bcast, 2, 0, Algo::Binomial);
        rule(Coll::Bcast, 2, 32768, Algo::ScatterAllgather);
        rule(Coll::Gather, 2, 0, Algo::Binomial);
        rule(Coll::Gather, 2, 8192, Algo::Linear);
        rule(Coll::Scatter, 2, 0, Algo::Binomial);
        rule(Coll::Scatter, 2, 8192, Algo::Linear);
        rule(Coll::Allgather, 2, 0, Algo::RecursiveDoubling);
        rule(Coll::Allgather, 2, 8192, Algo::Ring);
        rule(Coll::Alltoall, 2, 0, Algo::Bruck);
        rule(Coll::Alltoall, 2, 2048, Algo::Pairwise);
        rule(Coll::Reduce, 2, 0, Algo::Binomial);
        rule(Coll::Allreduce, 2, 0, Algo::ReduceBcast);
        rule(Coll::Allreduce, 2, 8192, Algo::Rabenseifner);
        rule(Coll::ReduceScatter, 2, 0, Algo::RecursiveHalving);
        rule(Coll::Scan, 2, 0, Algo::RecursiveDoubling);
    } else {
        configFatal("no built-in selection table for '%s' "
                    "(SP2, T3D, Paragon)", machine_name.c_str());
    }
    return t;
}

Algo
resolveAlgo(const machine::MachineConfig &cfg, Coll op, int p, Bytes m,
            Algo requested)
{
    Algo a = requested;
    if (a == Algo::Auto) {
        a = cfg.selection ? cfg.selection->choose(op, p, m)
                          : Algo::Default;
    }
    if (a == Algo::Default)
        a = cfg.algorithmFor(op);
    return a;
}

void
attachSelection(machine::MachineConfig &cfg,
                const std::string &name_or_path)
{
    std::string lower(name_or_path);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "sp2" || lower == "t3d" || lower == "paragon") {
        cfg.selection = std::make_shared<const SelectionTable>(
            fixedTable(name_or_path));
        return;
    }
    cfg.selection = std::make_shared<const SelectionTable>(
        SelectionTable::loadFile(name_or_path));
}

} // namespace ccsim::tuning
