#include "tuning/selection_cli.hh"

#include "machine/config_io.hh"
#include "tuning/selection_table.hh"

namespace ccsim::tuning {

void
addSelectionOpts(cli::Options &o)
{
    o.value("algo",
            "algorithm: explicit name, 'default' (machine's 1997 "
            "choice), or 'auto' (selection table)", "NAME");
    o.value("selection",
            "selection table: preset (SP2, T3D, Paragon) or a file "
            "from 'ccsim tune'", "SRC");
}

machine::Algo
algoOpt(const cli::Options &o)
{
    return machine::algoFromName(o.get("algo", "auto"));
}

void
applySelectionOpts(const cli::Options &o, machine::MachineConfig &cfg)
{
    // Shared across subcommands that may or may not declare the
    // selection pair — a no-op for the ones that don't.
    if (o.declares("selection") && o.has("selection"))
        attachSelection(cfg, o.get("selection"));
}

} // namespace ccsim::tuning
