/**
 * @file
 * SelectionTable: a per-collective piecewise decision map over
 * (communicator size p, message length m) -> Algo — the shape Open
 * MPI ships as coll_tuned_decision_fixed, made data.
 *
 * A table is a set of rules per collective:
 *
 *     bcast.rule = p>=2 m>=0 binomial
 *     bcast.rule = p>=2 m>=16384 scatter-allgather
 *
 * Lookup picks, among the rules whose (p_min, m_min) bounds are both
 * satisfied, the one with the largest p_min, breaking ties by the
 * largest m_min — i.e. the most specific region containing the
 * point.  No matching rule returns Algo::Default, which callers map
 * to the machine's configured choice, so a table only has to cover
 * the regions it has an opinion about.
 *
 * Serialization follows the machine/config_io conventions: one
 * `key = value` per line, `#` comments, strict ConfigError on
 * unknown keys/operations/algorithms.  save() emits rules in
 * canonical sorted order, and load() keeps them sorted, so
 * write -> load -> write round-trips byte-identically.
 *
 * Three built-in fixed tables model what a tuned MPI would have
 * shipped for the paper's machines (fixedTable("SP2") etc.); the
 * empirical tuner (tuning/tuner.hh) derives tables from sweeps.
 */

#ifndef CCSIM_TUNING_SELECTION_TABLE_HH
#define CCSIM_TUNING_SELECTION_TABLE_HH

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "machine/machine_config.hh"

namespace ccsim::tuning {

/** One piecewise region: applies when p >= p_min and m >= m_min. */
struct SelectionRule
{
    int p_min = 2;
    Bytes m_min = 0;
    machine::Algo algo = machine::Algo::Default;

    bool
    operator==(const SelectionRule &o) const
    {
        return p_min == o.p_min && m_min == o.m_min && algo == o.algo;
    }
};

/** Per-collective piecewise (p, m) -> Algo decision map. */
class SelectionTable
{
  public:
    /** Display label of the machine this table was tuned for. */
    const std::string &machine() const { return machine_; }
    void setMachine(const std::string &name) { machine_ = name; }

    /**
     * Add one rule (replaces an existing rule with the same bounds).
     * ConfigError on nonsense bounds (p_min < 2, m_min < 0) or a
     * non-concrete algorithm (Default/Auto make no sense as targets).
     */
    void addRule(machine::Coll op, const SelectionRule &rule);

    /** The rules of @p op, sorted by (p_min, m_min). */
    const std::vector<SelectionRule> &rulesFor(machine::Coll op) const;

    /**
     * Resolve one point: the most specific matching rule's algorithm
     * (largest p_min, then largest m_min), or Algo::Default when no
     * rule matches — the caller falls back to the machine's choice.
     */
    machine::Algo choose(machine::Coll op, int p, Bytes m) const;

    /** True when no collective has any rule. */
    bool empty() const;

    bool operator==(const SelectionTable &o) const;

    // ---- serialization (config_io conventions) -----------------------

    /** Write the canonical document (sorted rules). */
    void save(std::ostream &os) const;

    /** save() to a file; ConfigError on I/O failure. */
    void saveFile(const std::string &path) const;

    /** Parse a selection-table document; strict ConfigError. */
    static SelectionTable load(std::istream &is);

    /** load() from a file; ConfigError if unreadable. */
    static SelectionTable loadFile(const std::string &path);

  private:
    std::string machine_ = "unnamed";
    std::array<std::vector<SelectionRule>, machine::kNumColl> rules_;
};

/**
 * Built-in fixed decision map for one of the paper's machines
 * ("SP2", "T3D", "Paragon"; case-insensitive) — hand-derived
 * switch points in the style of Open MPI's
 * coll_tuned_decision_fixed, encoding the paper's own findings
 * (e.g. the SP2's binomial bcast losing to scatter+allgather past
 * ~16 KB).  ConfigError on unknown names.
 */
SelectionTable fixedTable(const std::string &machine_name);

/**
 * Resolve @p requested for one collective call: explicit algorithms
 * pass through unchanged; Auto consults cfg.selection (then the
 * machine's configured default); Default is the machine's configured
 * default.  This is the single resolution rule — the mpi layer
 * (coll_ctx) and the measurement harness both call it, so a
 * simulated call and a memoized sweep point can never disagree.
 */
machine::Algo resolveAlgo(const machine::MachineConfig &cfg,
                          machine::Coll op, int p, Bytes m,
                          machine::Algo requested);

/**
 * Attach a selection source to @p cfg: a preset name ("SP2", "T3D",
 * "Paragon" -> the built-in fixed table) or a path to a table file
 * saved by SelectionTable::save() / `ccsim tune`.  Names are tried
 * first, so a file literally named "SP2" needs a ./ prefix.
 */
void attachSelection(machine::MachineConfig &cfg,
                     const std::string &name_or_path);

} // namespace ccsim::tuning

#endif // CCSIM_TUNING_SELECTION_TABLE_HH
