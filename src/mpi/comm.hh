/**
 * @file
 * Comm: the MPI-style communicator and the library's public API.
 *
 * One Comm object exists per participating rank (exactly like an
 * MPI_Comm handle inside one process).  Rank programs are C++20
 * coroutines:
 *
 * @code
 *     sim::Task<void> program(machine::Machine &m, int rank) {
 *         mpi::Comm comm(m, rank);
 *         co_await comm.barrier();
 *         co_await comm.bcast(1024, 0);           // size-only
 *         auto v = co_await comm.allreduceData<float>(
 *             {1.0f, 2.0f}, mpi::ReduceOp::Sum);  // data-carrying
 *     }
 * @endcode
 *
 * Size-only collectives move no payload bytes (the simulator charges
 * the time a real payload would take); the *Data variants carry and
 * transform real element buffers so results can be checked.
 *
 * MPI semantics respected: collective calls must be made by every
 * rank of the communicator in the same order; tags/contexts keep
 * distinct calls and distinct communicators from interfering.
 */

#ifndef CCSIM_MPI_COMM_HH
#define CCSIM_MPI_COMM_HH

#include <memory>
#include <vector>

#include "machine/machine.hh"
#include "mpi/coll_ctx.hh"
#include "mpi/collectives.hh"
#include "mpi/datatype.hh"
#include "mpi/reduce_op.hh"
#include "msg/transport.hh"
#include "sim/task.hh"

namespace ccsim::mpi {

using machine::Algo;
using machine::Coll;

/** Per-rank communicator handle. */
class Comm
{
  public:
    /** World communicator for @p rank on @p mach. */
    Comm(machine::Machine &mach, int rank);

    /** This rank within the communicator. */
    int rank() const { return rank_; }

    /** Communicator size. */
    int size() const { return size_; }

    /** Global node id of communicator rank @p r. */
    int globalRank(int r) const;

    machine::Machine &machine() const { return *mach_; }

    /** The underlying transport endpoint of this rank. */
    msg::Transport &transport() const;

    /**
     * Derive a sub-communicator from the given *communicator* ranks
     * (strictly increasing is not required; order defines new rank
     * numbering).  The calling rank must be a member.  Deterministic:
     * every member derives the same context without communication.
     */
    Comm subgroup(const std::vector<int> &members) const;

    // ---- point-to-point ------------------------------------------------

    sim::Task<void> send(int dst, int tag, Bytes bytes,
                         msg::PayloadPtr payload = nullptr) const;
    sim::Task<msg::Message> recv(int src, int tag) const;
    msg::Request isend(int dst, int tag, Bytes bytes,
                       msg::PayloadPtr payload = nullptr) const;
    msg::Request irecv(int src, int tag) const;
    sim::Task<msg::Message> wait(msg::Request req) const;
    sim::Task<msg::Message> sendrecv(int dst, int send_tag, Bytes bytes,
                                     int src, int recv_tag,
                                     msg::PayloadPtr payload
                                     = nullptr) const;

    /** Occupy this rank's CPU for @p t (models local computation). */
    sim::Task<void> compute(Time t) const;

    // ---- collectives, size-only (benchmark form) -----------------------
    // m is the paper's "message length": bytes exchanged per node
    // pair (per-operand bytes for reduce/scan).

    // Every size-only method is its *Data sibling with a null
    // payload: both forward to one private *Core per operation, so
    // timing and tag allocation cannot diverge between the two forms.

    // The default argument is Algo::Auto: resolved through the
    // machine's selection table when one is attached (see
    // tuning::resolveAlgo), and identical to Algo::Default — the
    // machine's configured choice — when none is.  Explicit
    // algorithms always pass through untouched.

    sim::Task<void> barrier(Algo algo = Algo::Auto);
    sim::Task<void> bcast(Bytes m, int root = 0,
                          Algo algo = Algo::Auto);
    sim::Task<void> gather(Bytes m, int root = 0,
                           Algo algo = Algo::Auto);
    sim::Task<void> scatter(Bytes m, int root = 0,
                            Algo algo = Algo::Auto);
    sim::Task<void> allgather(Bytes m, Algo algo = Algo::Auto);
    sim::Task<void> gatherv(const std::vector<Bytes> &counts,
                            int root = 0, Algo algo = Algo::Auto);
    sim::Task<void> scatterv(const std::vector<Bytes> &counts,
                             int root = 0, Algo algo = Algo::Auto);
    sim::Task<void> alltoall(Bytes m, Algo algo = Algo::Auto);
    sim::Task<void> reduce(Bytes m, int root = 0,
                           Algo algo = Algo::Auto);
    sim::Task<void> allreduce(Bytes m, Algo algo = Algo::Auto);
    sim::Task<void> reduceScatter(Bytes m, Algo algo = Algo::Auto);
    sim::Task<void> scan(Bytes m, Algo algo = Algo::Auto);

    // ---- collectives, data-carrying ------------------------------------

    /** Broadcast root's vector; every rank returns it.  All ranks
     *  pass a vector of the broadcast length (contents matter only
     *  at the root). */
    template <typename T>
    sim::Task<std::vector<T>>
    bcastData(std::vector<T> v, int root = 0, Algo algo = Algo::Auto)
    {
        Bytes m = byteSize(v);
        msg::PayloadPtr data =
            rank_ == root ? msg::makePayload(v) : nullptr;
        msg::PayloadPtr out =
            co_await bcastCore(m, root, algo, std::move(data));
        co_return msg::payloadAs<T>(out);
    }

    /** Gather everyone's vector at the root (rank-order concat).
     *  Non-roots return an empty vector. */
    template <typename T>
    sim::Task<std::vector<T>>
    gatherData(const std::vector<T> &mine, int root = 0,
               Algo algo = Algo::Auto)
    {
        msg::PayloadPtr out = co_await gatherCore(
            byteSize(mine), root, algo, msg::makePayload(mine));
        co_return msg::payloadAs<T>(out);
    }

    /** Scatter root's p*count vector; every rank returns its count
     *  elements.  Non-roots may pass an empty vector. */
    template <typename T>
    sim::Task<std::vector<T>>
    scatterData(const std::vector<T> &all, int count, int root = 0,
                Algo algo = Algo::Auto)
    {
        Bytes m = static_cast<Bytes>(count) *
                  static_cast<Bytes>(sizeof(T));
        msg::PayloadPtr data =
            rank_ == root ? msg::makePayload(all) : nullptr;
        msg::PayloadPtr out =
            co_await scatterCore(m, root, algo, std::move(data));
        co_return msg::payloadAs<T>(out);
    }

    /** gatherv: ragged gather; rank i contributes counts[i]
     *  elements; root returns the concatenation, others empty. */
    template <typename T>
    sim::Task<std::vector<T>>
    gathervData(const std::vector<T> &mine,
                const std::vector<int> &counts, int root = 0,
                Algo algo = Algo::Auto)
    {
        msg::PayloadPtr out = co_await gathervCore(
            toByteCounts<T>(counts), root, algo,
            msg::makePayload(mine));
        co_return msg::payloadAs<T>(out);
    }

    /** scatterv: ragged scatter; rank i returns counts[i] elements
     *  of root's concatenated buffer. */
    template <typename T>
    sim::Task<std::vector<T>>
    scattervData(const std::vector<T> &all,
                 const std::vector<int> &counts, int root = 0,
                 Algo algo = Algo::Auto)
    {
        msg::PayloadPtr data =
            rank_ == root ? msg::makePayload(all) : nullptr;
        msg::PayloadPtr out = co_await scattervCore(
            toByteCounts<T>(counts), root, algo, std::move(data));
        co_return msg::payloadAs<T>(out);
    }

    /** Allgather: everyone returns the rank-order concatenation. */
    template <typename T>
    sim::Task<std::vector<T>>
    allgatherData(const std::vector<T> &mine, Algo algo = Algo::Auto)
    {
        msg::PayloadPtr out = co_await allgatherCore(
            byteSize(mine), algo, msg::makePayload(mine));
        co_return msg::payloadAs<T>(out);
    }

    /** Total exchange: pass p blocks of count elements (block i to
     *  rank i); returns p blocks (block i from rank i). */
    template <typename T>
    sim::Task<std::vector<T>>
    alltoallData(const std::vector<T> &mine, Algo algo = Algo::Auto)
    {
        if (mine.size() % static_cast<size_t>(size_) != 0)
            fatal("alltoallData: %zu elements not divisible by %d "
                  "ranks", mine.size(), size_);
        Bytes m = byteSize(mine) / size_;
        msg::PayloadPtr out =
            co_await alltoallCore(m, algo, msg::makePayload(mine));
        co_return msg::payloadAs<T>(out);
    }

    /** Elementwise reduction to the root; non-roots return empty. */
    template <typename T>
    sim::Task<std::vector<T>>
    reduceData(const std::vector<T> &mine, ReduceOp op, int root = 0,
               Algo algo = Algo::Auto)
    {
        msg::PayloadPtr out = co_await reduceCore(
            byteSize(mine), root, algo,
            makeCombiner(op, datatypeOf<T>()), msg::makePayload(mine));
        co_return msg::payloadAs<T>(out);
    }

    /** Elementwise reduction; everyone returns the result. */
    template <typename T>
    sim::Task<std::vector<T>>
    allreduceData(const std::vector<T> &mine, ReduceOp op,
                  Algo algo = Algo::Auto)
    {
        msg::PayloadPtr out = co_await allreduceCore(
            byteSize(mine), algo, makeCombiner(op, datatypeOf<T>()),
            msg::makePayload(mine));
        co_return msg::payloadAs<T>(out);
    }

    /** Reduce-scatter: pass p blocks of count elements; returns
     *  block rank() of the elementwise fold. */
    template <typename T>
    sim::Task<std::vector<T>>
    reduceScatterData(const std::vector<T> &mine, ReduceOp op,
                      Algo algo = Algo::Auto)
    {
        if (mine.size() % static_cast<size_t>(size_) != 0)
            fatal("reduceScatterData: %zu elements not divisible by "
                  "%d ranks", mine.size(), size_);
        Bytes m = byteSize(mine) / size_;
        msg::PayloadPtr out = co_await reduceScatterCore(
            m, algo, makeCombiner(op, datatypeOf<T>()),
            msg::makePayload(mine));
        co_return msg::payloadAs<T>(out);
    }

    /** Inclusive prefix reduction in rank order. */
    template <typename T>
    sim::Task<std::vector<T>>
    scanData(const std::vector<T> &mine, ReduceOp op,
             Algo algo = Algo::Auto)
    {
        msg::PayloadPtr out = co_await scanCore(
            byteSize(mine), algo, makeCombiner(op, datatypeOf<T>()),
            msg::makePayload(mine));
        co_return msg::payloadAs<T>(out);
    }

  private:
    Comm(machine::Machine &mach, int rank, int size,
         std::shared_ptr<const std::vector<int>> group, int ctx_id);

    /** Resolve Algo::Auto / Algo::Default (via tuning::resolveAlgo,
     *  which needs the message length @p m for the table lookup) and
     *  assemble the per-call context. */
    CollCtx makeCtx(Coll op, Algo &algo, Bytes m, Combiner combiner);

    /** Report a collective to the machine's CommHook (if any) with
     *  its arguments as requested, before algorithm resolution. */
    void hookCollective(Coll op, Bytes m, int root, Algo algo,
                        const std::vector<Bytes> *counts = nullptr) const;

    // One Core per collective: context assembly + Impl dispatch.
    // Both public forms (size-only, *Data) land here, so a null and a
    // real payload take byte-identical simulated time.
    sim::Task<msg::PayloadPtr> bcastCore(Bytes m, int root, Algo algo,
                                         msg::PayloadPtr data);
    sim::Task<msg::PayloadPtr> gatherCore(Bytes m, int root, Algo algo,
                                          msg::PayloadPtr mine);
    sim::Task<msg::PayloadPtr> scatterCore(Bytes m, int root, Algo algo,
                                           msg::PayloadPtr all);
    sim::Task<msg::PayloadPtr> gathervCore(std::vector<Bytes> counts,
                                           int root, Algo algo,
                                           msg::PayloadPtr mine);
    sim::Task<msg::PayloadPtr> scattervCore(std::vector<Bytes> counts,
                                            int root, Algo algo,
                                            msg::PayloadPtr all);
    sim::Task<msg::PayloadPtr> allgatherCore(Bytes m, Algo algo,
                                             msg::PayloadPtr mine);
    sim::Task<msg::PayloadPtr> alltoallCore(Bytes m, Algo algo,
                                            msg::PayloadPtr mine);
    sim::Task<msg::PayloadPtr> reduceCore(Bytes m, int root, Algo algo,
                                          Combiner combiner,
                                          msg::PayloadPtr mine);
    sim::Task<msg::PayloadPtr> allreduceCore(Bytes m, Algo algo,
                                             Combiner combiner,
                                             msg::PayloadPtr mine);
    sim::Task<msg::PayloadPtr> reduceScatterCore(Bytes m, Algo algo,
                                                 Combiner combiner,
                                                 msg::PayloadPtr mine);
    sim::Task<msg::PayloadPtr> scanCore(Bytes m, Algo algo,
                                        Combiner combiner,
                                        msg::PayloadPtr mine);

    template <typename T>
    static std::vector<Bytes>
    toByteCounts(const std::vector<int> &counts)
    {
        std::vector<Bytes> out;
        out.reserve(counts.size());
        for (int c : counts)
            out.push_back(static_cast<Bytes>(c) *
                          static_cast<Bytes>(sizeof(T)));
        return out;
    }

    template <typename T>
    static Bytes
    byteSize(const std::vector<T> &v)
    {
        return static_cast<Bytes>(v.size()) *
               static_cast<Bytes>(sizeof(T));
    }

    machine::Machine *mach_;
    int rank_;
    int size_;
    std::shared_ptr<const std::vector<int>> group_; // null = world
    int ctx_id_;
    int coll_seq_ = 0;
};

} // namespace ccsim::mpi

#endif // CCSIM_MPI_COMM_HH
