/**
 * @file
 * Allreduce algorithms: reduce-then-broadcast composition and
 * MPICH-style recursive doubling (with the non-power-of-two fold-in
 * pre/post phases).
 */

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

sim::Task<msg::PayloadPtr>
allreduceReduceBcast(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    CollCtx sub = ctx;
    sub.costs.entry = 0; // phases share one collective entry
    msg::PayloadPtr total = co_await reduceImpl(
        sub, machine::Algo::Binomial, m, 0, std::move(mine));
    co_return co_await bcastImpl(sub, machine::Algo::Binomial, m, 0,
                                 std::move(total));
}

sim::Task<msg::PayloadPtr>
allreduceRecDoubling(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;
    int rank = ctx.rank;
    int pof2 = 1 << floorLog2(p);
    int rem = p - pof2;

    msg::PayloadPtr acc = std::move(mine);

    // Pre-phase: fold the surplus ranks into their even partners so
    // a power-of-two subset runs the doubling rounds.
    int newrank;
    if (rank < 2 * rem) {
        if (rank % 2 == 0) {
            co_await ctx.stage(m);
            co_await ctx.send(rank + 1, m, acc);
            newrank = -1;
        } else {
            co_await ctx.stage(m);
            msg::Message got = co_await ctx.recv(rank - 1);
            co_await ctx.arith(m);
            acc = ctx.fold(got.payload, acc);
            newrank = rank / 2;
        }
    } else {
        newrank = rank - rem;
    }

    if (newrank != -1) {
        for (int mask = 1; mask < pof2; mask <<= 1) {
            int newpartner = newrank ^ mask;
            int partner = newpartner < rem ? newpartner * 2 + 1
                                           : newpartner + rem;
            co_await ctx.stage(2 * m);
            msg::Message got =
                co_await ctx.sendrecv(partner, m, partner, acc);
            co_await ctx.arith(m);
            if (partner < rank)
                acc = ctx.fold(got.payload, acc);
            else
                acc = ctx.fold(acc, got.payload);
        }
    }

    // Post-phase: hand the result back to the folded-in ranks.
    if (rank < 2 * rem) {
        if (rank % 2 == 1) {
            co_await ctx.stage(m);
            co_await ctx.send(rank - 1, m, acc);
        } else {
            msg::Message got = co_await ctx.recv(rank + 1);
            acc = got.payload;
        }
    }
    co_return acc;
}

/**
 * Rabenseifner: reduce-scatter (recursive halving) the vector in p
 * blocks, then allgather (recursive doubling) the folded blocks.
 * Bandwidth-optimal for long vectors: ~2 m (p-1)/p bytes per node
 * instead of the tree's m log2 p.
 */
sim::Task<msg::PayloadPtr>
allreduceRabenseifner(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;
    // Chunks must stay element-aligned for the fold; round up to the
    // largest elementary size (8 bytes).
    Bytes chunk = ((m + p - 1) / p + 7) / 8 * 8;

    // Pad to p equal blocks; the padded tail is sliced away at the
    // end and never contaminates real elements (folds are
    // elementwise).
    msg::PayloadPtr padded;
    if (mine) {
        auto buf = std::make_shared<std::vector<std::byte>>(*mine);
        buf->resize(static_cast<size_t>(chunk * p));
        padded = buf;
    }

    CollCtx sub = ctx;
    sub.costs.entry = 0;
    msg::PayloadPtr my_block = co_await reduceScatterImpl(
        sub, machine::Algo::RecursiveHalving, chunk,
        std::move(padded));
    msg::PayloadPtr all = co_await allgatherImpl(
        sub, machine::Algo::RecursiveDoubling, chunk,
        std::move(my_block));
    co_return slicePayload(all, 0, m);
}

} // namespace

sim::Task<msg::PayloadPtr>
allreduceImpl(CollCtx ctx, machine::Algo algo, Bytes m,
              msg::PayloadPtr mine)
{
    if (m < 0)
        fatal("allreduce: negative message length");
    if (mine && static_cast<Bytes>(mine->size()) != m)
        fatal("allreduce: contribution is %zu bytes, expected %lld",
              mine->size(), static_cast<long long>(m));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return mine;

    switch (algo) {
      case machine::Algo::ReduceBcast:
        co_return co_await allreduceReduceBcast(ctx, m, std::move(mine));
      case machine::Algo::RecursiveDoubling:
        co_return co_await allreduceRecDoubling(ctx, m, std::move(mine));
      case machine::Algo::Rabenseifner:
        co_return co_await allreduceRabenseifner(ctx, m,
                                                 std::move(mine));
      default:
        fatal("allreduce: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
