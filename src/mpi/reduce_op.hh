/**
 * @file
 * Reduction operators and payload combiners.
 *
 * combine() folds two equally-sized typed buffers elementwise; the
 * collectives carry a Combiner closure so the same tree algorithm
 * both moves the bytes and computes the result.  In size-only
 * benchmark runs the Combiner is empty and only the arithmetic
 * *time* is charged.
 */

#ifndef CCSIM_MPI_REDUCE_OP_HH
#define CCSIM_MPI_REDUCE_OP_HH

#include <functional>
#include <string>

#include "mpi/datatype.hh"
#include "msg/message.hh"

namespace ccsim::mpi {

/** Elementwise reduction operators (all associative, commutative). */
enum class ReduceOp
{
    Sum,
    Prod,
    Min,
    Max,
};

/** Printable operator name. */
std::string reduceOpName(ReduceOp op);

/**
 * Folds two payloads a (+) b into a fresh payload.  Both inputs may
 * be null (size-only mode), in which case the result is null.
 */
using Combiner = std::function<msg::PayloadPtr(const msg::PayloadPtr &,
                                               const msg::PayloadPtr &)>;

/**
 * Elementwise a (+) b for payloads of @p dtype elements.  Panics on
 * size mismatch.  Null inputs yield a null result.
 */
msg::PayloadPtr combine(ReduceOp op, Datatype dtype,
                        const msg::PayloadPtr &a,
                        const msg::PayloadPtr &b);

/** Bind (op, dtype) into a reusable Combiner. */
Combiner makeCombiner(ReduceOp op, Datatype dtype);

} // namespace ccsim::mpi

#endif // CCSIM_MPI_REDUCE_OP_HH
