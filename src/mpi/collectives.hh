/**
 * @file
 * Collective-algorithm entry points.
 *
 * Each operation offers several algorithms (selected by Algo); the
 * Comm front-end resolves Algo::Default to the machine's calibrated
 * choice.  All functions are rank-local coroutines: every rank of
 * the communicator calls the same function with matching arguments,
 * exactly like MPI.
 *
 * Payload semantics (all null-safe; null in size-only mode):
 *  - bcast:     root passes the m-byte message, all ranks return it;
 *  - gather:    each rank passes its m-byte block, root returns the
 *               p*m concatenation in rank order, others null;
 *  - scatter:   root passes p*m bytes, every rank returns its block;
 *  - allgather: each passes m bytes, all return the concatenation;
 *  - alltoall:  each passes p*m bytes (block i to rank i), all
 *               return p*m (block i from rank i);
 *  - reduce:    each passes m bytes, root returns the elementwise
 *               fold, others null;
 *  - allreduce: like reduce but everyone returns the fold;
 *  - scan:      inclusive prefix fold in rank order.
 */

#ifndef CCSIM_MPI_COLLECTIVES_HH
#define CCSIM_MPI_COLLECTIVES_HH

#include "machine/collective_types.hh"
#include "mpi/coll_ctx.hh"

namespace ccsim::mpi {

sim::Task<void> barrierImpl(CollCtx ctx, machine::Algo algo);

sim::Task<msg::PayloadPtr> bcastImpl(CollCtx ctx, machine::Algo algo,
                                     Bytes m, int root,
                                     msg::PayloadPtr data);

sim::Task<msg::PayloadPtr> gatherImpl(CollCtx ctx, machine::Algo algo,
                                      Bytes m, int root,
                                      msg::PayloadPtr mine);

sim::Task<msg::PayloadPtr> scatterImpl(CollCtx ctx, machine::Algo algo,
                                       Bytes m, int root,
                                       msg::PayloadPtr all);

/** gatherv: rank i contributes counts[i] bytes; root returns the
 *  concatenation in rank order.  @p algo keeps the signature uniform
 *  with gatherImpl, but only Linear is implemented (the era's MPICH
 *  did the same — trees do not compose with ragged counts); anything
 *  else is fatal(). */
sim::Task<msg::PayloadPtr> gathervImpl(CollCtx ctx, machine::Algo algo,
                                       const std::vector<Bytes> &counts,
                                       int root, msg::PayloadPtr mine);

/** scatterv: root holds sum(counts) bytes; rank i returns its
 *  counts[i]-byte block.  Linear only, like gathervImpl. */
sim::Task<msg::PayloadPtr> scattervImpl(
    CollCtx ctx, machine::Algo algo, const std::vector<Bytes> &counts,
    int root, msg::PayloadPtr all);

sim::Task<msg::PayloadPtr> allgatherImpl(CollCtx ctx, machine::Algo algo,
                                         Bytes m, msg::PayloadPtr mine);

sim::Task<msg::PayloadPtr> alltoallImpl(CollCtx ctx, machine::Algo algo,
                                        Bytes m, msg::PayloadPtr mine);

sim::Task<msg::PayloadPtr> reduceImpl(CollCtx ctx, machine::Algo algo,
                                      Bytes m, int root,
                                      msg::PayloadPtr mine);

sim::Task<msg::PayloadPtr> allreduceImpl(CollCtx ctx, machine::Algo algo,
                                         Bytes m, msg::PayloadPtr mine);

/** reduce-scatter: each rank passes p blocks of m bytes; block i of
 *  the elementwise fold lands at rank i. */
sim::Task<msg::PayloadPtr> reduceScatterImpl(CollCtx ctx,
                                             machine::Algo algo,
                                             Bytes m,
                                             msg::PayloadPtr mine);

sim::Task<msg::PayloadPtr> scanImpl(CollCtx ctx, machine::Algo algo,
                                    Bytes m, msg::PayloadPtr mine);

} // namespace ccsim::mpi

#endif // CCSIM_MPI_COLLECTIVES_HH
