#include "mpi/coll_ctx.hh"

#include <cstring>

#include "util/logging.hh"

namespace ccsim::mpi {

int
ceilLog2(int p)
{
    if (p < 1)
        panic("ceilLog2: non-positive argument %d", p);
    int e = 0;
    while ((1 << e) < p)
        ++e;
    return e;
}

int
floorLog2(int p)
{
    if (p < 1)
        panic("floorLog2: non-positive argument %d", p);
    int e = 0;
    while ((1 << (e + 1)) <= p)
        ++e;
    return e;
}

bool
isPow2(int p)
{
    return p > 0 && (p & (p - 1)) == 0;
}

msg::PayloadPtr
slicePayload(const msg::PayloadPtr &p, Bytes offset, Bytes len)
{
    if (!p)
        return nullptr;
    if (offset < 0 || len < 0 ||
        static_cast<size_t>(offset + len) > p->size())
        panic("slicePayload: [%lld, %lld) outside payload of %zu",
              static_cast<long long>(offset),
              static_cast<long long>(offset + len), p->size());
    auto out = std::make_shared<std::vector<std::byte>>(
        static_cast<size_t>(len));
    if (len > 0)
        std::memcpy(out->data(), p->data() + offset,
                    static_cast<size_t>(len));
    return out;
}

msg::PayloadPtr
concatPayload(const msg::PayloadPtr &a, const msg::PayloadPtr &b)
{
    if (!a && !b)
        return nullptr;
    auto out = std::make_shared<std::vector<std::byte>>();
    if (a)
        out->insert(out->end(), a->begin(), a->end());
    if (b)
        out->insert(out->end(), b->begin(), b->end());
    return out;
}

msg::PayloadPtr
concatPayloads(const std::vector<msg::PayloadPtr> &parts)
{
    bool any = false;
    for (const auto &p : parts)
        any = any || (p != nullptr);
    if (!any)
        return nullptr;
    auto out = std::make_shared<std::vector<std::byte>>();
    for (const auto &p : parts)
        if (p)
            out->insert(out->end(), p->begin(), p->end());
    return out;
}

msg::PayloadPtr
rotateBlocksToAbsolute(const msg::PayloadPtr &rel, int p, Bytes m,
                       int root)
{
    if (!rel)
        return nullptr;
    if (root == 0)
        return rel;
    if (rel->size() != static_cast<size_t>(p * m))
        panic("rotateBlocksToAbsolute: payload %zu != %d blocks of %lld",
              rel->size(), p, static_cast<long long>(m));
    auto out = std::make_shared<std::vector<std::byte>>(rel->size());
    for (int i = 0; i < p; ++i) {
        int j = (i - root % p + p) % p;
        std::memcpy(out->data() + static_cast<size_t>(i) * m,
                    rel->data() + static_cast<size_t>(j) * m,
                    static_cast<size_t>(m));
    }
    return out;
}

msg::PayloadPtr
rotateBlocksToRelative(const msg::PayloadPtr &abs, int p, Bytes m,
                       int root)
{
    if (!abs)
        return nullptr;
    if (root == 0)
        return abs;
    if (abs->size() != static_cast<size_t>(p * m))
        panic("rotateBlocksToRelative: payload %zu != %d blocks of %lld",
              abs->size(), p, static_cast<long long>(m));
    auto out = std::make_shared<std::vector<std::byte>>(abs->size());
    for (int j = 0; j < p; ++j) {
        int i = (root + j) % p;
        std::memcpy(out->data() + static_cast<size_t>(j) * m,
                    abs->data() + static_cast<size_t>(i) * m,
                    static_cast<size_t>(m));
    }
    return out;
}

} // namespace ccsim::mpi
