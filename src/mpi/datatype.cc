#include "mpi/datatype.hh"

#include "util/logging.hh"

namespace ccsim::mpi {

Bytes
datatypeSize(Datatype d)
{
    switch (d) {
      case Datatype::F32:
        return 4;
      case Datatype::F64:
        return 8;
      case Datatype::I32:
        return 4;
      case Datatype::I64:
        return 8;
      case Datatype::U8:
        return 1;
      default:
        panic("datatypeSize: bad datatype %d", static_cast<int>(d));
    }
}

std::string
datatypeName(Datatype d)
{
    switch (d) {
      case Datatype::F32:
        return "float32";
      case Datatype::F64:
        return "float64";
      case Datatype::I32:
        return "int32";
      case Datatype::I64:
        return "int64";
      case Datatype::U8:
        return "byte";
      default:
        panic("datatypeName: bad datatype %d", static_cast<int>(d));
    }
}

} // namespace ccsim::mpi
