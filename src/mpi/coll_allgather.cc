/**
 * @file
 * Allgather algorithms: ring shifts (p-1 steps, bandwidth optimal)
 * and recursive doubling (log2 p steps, power-of-two sizes).
 */

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

sim::Task<msg::PayloadPtr>
allgatherRing(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;
    int right = ctx.relative(ctx.rank, 1);
    int left = ctx.relative(ctx.rank, -1);

    std::vector<msg::PayloadPtr> blocks(static_cast<size_t>(p));
    blocks[static_cast<size_t>(ctx.rank)] = mine;

    msg::PayloadPtr cur = std::move(mine);
    int cur_idx = ctx.rank;
    for (int s = 0; s < p - 1; ++s) {
        co_await ctx.stage(2 * m);
        msg::Message got = co_await ctx.sendrecv(right, m, left, cur);
        cur = got.payload;
        cur_idx = ctx.relative(cur_idx, -1);
        blocks[static_cast<size_t>(cur_idx)] = cur;
    }
    co_return concatPayloads(blocks);
}

/** Doubling exchange; requires a power-of-two communicator. */
sim::Task<msg::PayloadPtr>
allgatherRecDoubling(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;
    msg::PayloadPtr acc = std::move(mine); // contiguous group block
    Bytes cnt = 1;
    for (int mask = 1; mask < p; mask <<= 1) {
        int partner = ctx.rank ^ mask;
        co_await ctx.stage(2 * m * cnt);
        msg::Message got =
            co_await ctx.sendrecv(partner, m * cnt, partner, acc);
        if (ctx.rank & mask)
            acc = concatPayload(got.payload, acc);
        else
            acc = concatPayload(acc, got.payload);
        cnt <<= 1;
    }
    co_return acc;
}

} // namespace

sim::Task<msg::PayloadPtr>
allgatherImpl(CollCtx ctx, machine::Algo algo, Bytes m,
              msg::PayloadPtr mine)
{
    if (m < 0)
        fatal("allgather: negative message length");
    if (mine && static_cast<Bytes>(mine->size()) != m)
        fatal("allgather: contribution is %zu bytes, expected %lld",
              mine->size(), static_cast<long long>(m));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return mine;

    if (algo == machine::Algo::RecursiveDoubling && !isPow2(ctx.size))
        algo = machine::Algo::Ring;

    switch (algo) {
      case machine::Algo::Ring:
        co_return co_await allgatherRing(ctx, m, std::move(mine));
      case machine::Algo::RecursiveDoubling:
        co_return co_await allgatherRecDoubling(ctx, m, std::move(mine));
      default:
        fatal("allgather: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
