/**
 * @file
 * Barrier algorithms: linear (fan-in + release), binomial tree,
 * dissemination, and the T3D hardware barrier tree.
 */

#include "machine/machine.hh"
#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

/** Everyone reports to rank 0, which then releases everyone. */
sim::Task<void>
barrierLinear(CollCtx ctx)
{
    int p = ctx.size;
    if (ctx.rank == 0) {
        for (int i = 1; i < p; ++i) {
            co_await ctx.stage();
            co_await ctx.recv(msg::kAnySource);
        }
        for (int i = 1; i < p; ++i) {
            co_await ctx.stage();
            co_await ctx.send(i, 0);
        }
    } else {
        co_await ctx.stage();
        co_await ctx.send(0, 0);
        co_await ctx.recv(0);
    }
}

/** Binomial fan-in to rank 0, binomial fan-out release. */
sim::Task<void>
barrierTree(CollCtx ctx)
{
    int p = ctx.size;
    int r = ctx.rank;

    int mask = 1;
    while (mask < p) {
        if (r & mask) {
            co_await ctx.stage();
            co_await ctx.send(r - mask, 0);
            break;
        }
        int src = r | mask;
        if (src < p) {
            co_await ctx.stage();
            co_await ctx.recv(src);
        }
        mask <<= 1;
    }

    // Release phase: binomial broadcast of a zero-byte token.
    mask = 1;
    while (mask < p) {
        if (r & mask) {
            co_await ctx.recv(r - mask);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (r + mask < p) {
            co_await ctx.stage();
            co_await ctx.send(r + mask, 0);
        }
        mask >>= 1;
    }
}

/**
 * Dissemination: ceil(log2 p) rounds; in round k every rank signals
 * (rank + 2^k) and waits for (rank - 2^k).  What MPICH used.
 */
sim::Task<void>
barrierDissemination(CollCtx ctx)
{
    for (int k = 1; k < ctx.size; k <<= 1) {
        co_await ctx.stage();
        int to = ctx.relative(ctx.rank, k);
        int from = ctx.relative(ctx.rank, -k);
        co_await ctx.sendrecv(to, 0, from);
    }
}

/** The dedicated barrier network (requires full-machine group). */
sim::Task<void>
barrierHardware(CollCtx ctx)
{
    machine::HardwareBarrier *hw = ctx.mach->hwBarrier();
    if (!hw)
        fatal("hardware barrier requested on '%s', which has none",
              ctx.mach->config().name.c_str());
    co_await hw->arrive(ctx.global(ctx.rank));
}

} // namespace

sim::Task<void>
barrierImpl(CollCtx ctx, machine::Algo algo)
{
    co_await ctx.entry();
    if (ctx.size == 1)
        co_return;

    // The hardware tree spans the whole machine; a sub-communicator
    // must fall back to the software barrier.
    if (algo == machine::Algo::Hardware &&
        ctx.size != ctx.mach->size())
        algo = machine::Algo::Dissemination;

    switch (algo) {
      case machine::Algo::Linear:
        co_await barrierLinear(ctx);
        break;
      case machine::Algo::Binomial:
        co_await barrierTree(ctx);
        break;
      case machine::Algo::Dissemination:
        co_await barrierDissemination(ctx);
        break;
      case machine::Algo::Hardware:
        co_await barrierHardware(ctx);
        break;
      default:
        fatal("barrier: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
