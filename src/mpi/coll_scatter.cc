/**
 * @file
 * Scatter algorithms: linear fan-out from the root (era default) and
 * binomial recursive halving.
 */

#include <algorithm>

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

sim::Task<msg::PayloadPtr>
scatterLinear(CollCtx ctx, Bytes m, int root, msg::PayloadPtr all)
{
    int p = ctx.size;
    if (ctx.rank == root) {
        for (int i = 0; i < p; ++i) {
            if (i == root)
                continue;
            co_await ctx.stage(m);
            co_await ctx.send(i, m,
                              slicePayload(all, m * static_cast<Bytes>(i),
                                           m));
        }
        co_return slicePayload(all, m * static_cast<Bytes>(root), m);
    }
    msg::Message got = co_await ctx.recv(root);
    co_return got.payload;
}

/**
 * Recursive halving over root-relative ranks (mirror of the binomial
 * gather): each node receives the block for its whole subtree, then
 * peels halves off to its children.
 */
sim::Task<msg::PayloadPtr>
scatterBinomial(CollCtx ctx, Bytes m, int root, msg::PayloadPtr all)
{
    int p = ctx.size;
    int r = (ctx.rank - root % p + p) % p;
    auto abs = [&](int rel) { return (rel + root) % p; };

    msg::PayloadPtr buf; // covers rel [r, r + cnt)
    int top_mask;
    if (r == 0) {
        buf = rotateBlocksToRelative(all, p, m, root);
        top_mask = 1 << ceilLog2(p);
    } else {
        int lsb = r & -r;
        co_await ctx.stage(m * static_cast<Bytes>(
            std::min(lsb, p - r)));
        msg::Message got = co_await ctx.recv(abs(r - lsb));
        buf = got.payload;
        top_mask = lsb;
    }

    for (int mask = top_mask >> 1; mask > 0; mask >>= 1) {
        int child = r + mask;
        if (child < p) {
            int blk = std::min(mask, p - child);
            co_await ctx.stage(m * static_cast<Bytes>(blk));
            co_await ctx.send(abs(child), m * static_cast<Bytes>(blk),
                              slicePayload(buf,
                                           m * static_cast<Bytes>(mask),
                                           m * static_cast<Bytes>(blk)));
        }
    }
    co_return slicePayload(buf, 0, m);
}

} // namespace

sim::Task<msg::PayloadPtr>
scattervImpl(CollCtx ctx, machine::Algo algo,
             const std::vector<Bytes> &counts, int root,
             msg::PayloadPtr all)
{
    int p = ctx.size;
    if (algo != machine::Algo::Linear)
        fatal("scatterv: only the linear algorithm is implemented, "
              "got %s", machine::algoName(algo).c_str());
    if (root < 0 || root >= p)
        fatal("scatterv: root %d outside communicator of %d", root, p);
    if (static_cast<int>(counts.size()) != p)
        fatal("scatterv: %zu counts for %d ranks", counts.size(), p);
    Bytes total = 0;
    for (Bytes c : counts) {
        if (c < 0)
            fatal("scatterv: negative count");
        total += c;
    }
    if (ctx.rank == root && all &&
        static_cast<Bytes>(all->size()) != total)
        fatal("scatterv: root payload is %zu bytes, expected %lld",
              all->size(), static_cast<long long>(total));

    co_await ctx.entry();
    if (p == 1)
        co_return slicePayload(all, 0, counts[0]);

    if (ctx.rank == root) {
        Bytes off = 0;
        msg::PayloadPtr my_block;
        for (int i = 0; i < p; ++i) {
            Bytes c = counts[static_cast<size_t>(i)];
            if (i == root) {
                my_block = slicePayload(all, off, c);
            } else {
                co_await ctx.stage(c);
                co_await ctx.send(i, c, slicePayload(all, off, c));
            }
            off += c;
        }
        co_return my_block;
    }
    msg::Message got = co_await ctx.recv(root);
    co_return got.payload;
}

sim::Task<msg::PayloadPtr>
scatterImpl(CollCtx ctx, machine::Algo algo, Bytes m, int root,
            msg::PayloadPtr all)
{
    if (root < 0 || root >= ctx.size)
        fatal("scatter: root %d outside communicator of %d", root,
              ctx.size);
    if (m < 0)
        fatal("scatter: negative message length");
    if (ctx.rank == root && all &&
        static_cast<Bytes>(all->size()) !=
            m * static_cast<Bytes>(ctx.size))
        fatal("scatter: root payload is %zu bytes, expected %lld",
              all->size(), static_cast<long long>(m * ctx.size));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return slicePayload(all, 0, m);

    switch (algo) {
      case machine::Algo::Linear:
        co_return co_await scatterLinear(ctx, m, root, std::move(all));
      case machine::Algo::Binomial:
        co_return co_await scatterBinomial(ctx, m, root, std::move(all));
      default:
        fatal("scatter: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
