/**
 * @file
 * Broadcast algorithms: linear fan-out, binomial tree (MPICH / CRI
 * default of the era), and van de Geijn scatter+allgather for long
 * messages.
 */

#include <algorithm>

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

sim::Task<msg::PayloadPtr>
bcastLinear(CollCtx ctx, Bytes m, int root, msg::PayloadPtr data)
{
    if (ctx.rank == root) {
        for (int i = 0; i < ctx.size; ++i) {
            if (i == root)
                continue;
            co_await ctx.stage(m);
            co_await ctx.send(i, m, data);
        }
        co_return data;
    }
    msg::Message got = co_await ctx.recv(root);
    co_return got.payload;
}

sim::Task<msg::PayloadPtr>
bcastBinomial(CollCtx ctx, Bytes m, int root, msg::PayloadPtr data)
{
    int p = ctx.size;
    int r = (ctx.rank - root % p + p) % p;
    auto abs = [&](int rel) { return (rel + root) % p; };

    int mask = 1;
    while (mask < p) {
        if (r & mask) {
            co_await ctx.stage(m);
            msg::Message got = co_await ctx.recv(abs(r - mask));
            data = got.payload;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (r + mask < p) {
            co_await ctx.stage(m);
            co_await ctx.send(abs(r + mask), m, data);
        }
        mask >>= 1;
    }
    co_return data;
}

/**
 * van de Geijn long-message broadcast: binomial-scatter the message
 * in p chunks, then ring-allgather the chunks.  Per-byte cost is
 * ~2 m (p-1)/p instead of m log2 p.
 */
sim::Task<msg::PayloadPtr>
bcastScatterAllgather(CollCtx ctx, Bytes m, int root,
                      msg::PayloadPtr data)
{
    int p = ctx.size;
    Bytes chunk = (m + p - 1) / p;

    // Pad the root's payload to p equal chunks.
    msg::PayloadPtr padded;
    if (ctx.rank == root && data) {
        auto buf = std::make_shared<std::vector<std::byte>>(*data);
        buf->resize(static_cast<size_t>(chunk * p));
        padded = buf;
    }

    // The phases inherit this call's stage costs but must not
    // re-charge the collective entry cost.
    CollCtx sub = ctx;
    sub.costs.entry = 0;
    msg::PayloadPtr my_chunk = co_await scatterImpl(
        sub, machine::Algo::Binomial, chunk, root, std::move(padded));
    msg::PayloadPtr all = co_await allgatherImpl(
        sub, machine::Algo::Ring, chunk, std::move(my_chunk));
    co_return slicePayload(all, 0, m);
}

/** Segment size of the pipelined chain broadcast. */
constexpr Bytes kBcastSegment = 8 * KiB;

/**
 * Segmented chain pipeline: ranks form a line in root-relative
 * order; each segment is forwarded as soon as it lands.  Time is
 * ~(S + p - 2) segment steps instead of S log2 p — the long-message
 * regime's friend, terrible for short messages.
 */
sim::Task<msg::PayloadPtr>
bcastPipelined(CollCtx ctx, Bytes m, int root, msg::PayloadPtr data)
{
    int p = ctx.size;
    int rel = (ctx.rank - root % p + p) % p;
    auto abs = [&](int r) { return (r + root) % p; };

    int segments =
        static_cast<int>((m + kBcastSegment - 1) / kBcastSegment);
    if (segments == 0)
        segments = 1;

    std::vector<msg::PayloadPtr> parts(
        static_cast<size_t>(segments));
    for (int s = 0; s < segments; ++s) {
        Bytes off = kBcastSegment * static_cast<Bytes>(s);
        Bytes len = std::min(kBcastSegment, m - off);
        if (m == 0)
            len = 0;
        if (rel > 0) {
            msg::Message got = co_await ctx.recv(abs(rel - 1));
            parts[static_cast<size_t>(s)] = got.payload;
        } else {
            parts[static_cast<size_t>(s)] =
                slicePayload(data, off, len);
        }
        if (rel < p - 1) {
            co_await ctx.stage(len);
            co_await ctx.send(abs(rel + 1), len,
                              parts[static_cast<size_t>(s)]);
        }
    }
    if (rel == 0)
        co_return data;
    co_return concatPayloads(parts);
}

} // namespace

sim::Task<msg::PayloadPtr>
bcastImpl(CollCtx ctx, machine::Algo algo, Bytes m, int root,
          msg::PayloadPtr data)
{
    if (root < 0 || root >= ctx.size)
        fatal("bcast: root %d outside communicator of %d", root,
              ctx.size);
    if (m < 0)
        fatal("bcast: negative message length");
    if (ctx.rank == root && data &&
        static_cast<Bytes>(data->size()) != m)
        fatal("bcast: root payload is %zu bytes, expected %lld",
              data->size(), static_cast<long long>(m));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return data;

    switch (algo) {
      case machine::Algo::Linear:
        co_return co_await bcastLinear(ctx, m, root, std::move(data));
      case machine::Algo::Binomial:
        co_return co_await bcastBinomial(ctx, m, root, std::move(data));
      case machine::Algo::ScatterAllgather:
        co_return co_await bcastScatterAllgather(ctx, m, root,
                                                 std::move(data));
      case machine::Algo::Pipelined:
        co_return co_await bcastPipelined(ctx, m, root,
                                          std::move(data));
      default:
        fatal("bcast: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
