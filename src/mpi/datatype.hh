/**
 * @file
 * Elementary datatypes for the MPI subset.
 *
 * The paper's experiments use MPI_FLOAT throughout; the library
 * supports the usual elementary types so reductions can be verified
 * exactly (integer ops) as well as realistically (floats).
 */

#ifndef CCSIM_MPI_DATATYPE_HH
#define CCSIM_MPI_DATATYPE_HH

#include <cstdint>
#include <string>
#include <type_traits>

#include "util/units.hh"

namespace ccsim::mpi {

/** Elementary datatypes. */
enum class Datatype
{
    F32, //!< MPI_FLOAT (the paper's element type)
    F64, //!< MPI_DOUBLE
    I32, //!< MPI_INT
    I64, //!< MPI_LONG_LONG
    U8,  //!< MPI_BYTE
};

/** Size in bytes of one element. */
Bytes datatypeSize(Datatype d);

/** Printable name. */
std::string datatypeName(Datatype d);

/** Map a C++ element type to its Datatype tag. */
template <typename T>
constexpr Datatype
datatypeOf()
{
    if constexpr (std::is_same_v<T, float>)
        return Datatype::F32;
    else if constexpr (std::is_same_v<T, double>)
        return Datatype::F64;
    else if constexpr (std::is_same_v<T, std::int32_t>)
        return Datatype::I32;
    else if constexpr (std::is_same_v<T, std::int64_t>)
        return Datatype::I64;
    else if constexpr (std::is_same_v<T, std::uint8_t>)
        return Datatype::U8;
    else
        static_assert(!sizeof(T *), "unsupported element type");
}

} // namespace ccsim::mpi

#endif // CCSIM_MPI_DATATYPE_HH
