#include "mpi/reduce_op.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace ccsim::mpi {

std::string
reduceOpName(ReduceOp op)
{
    switch (op) {
      case ReduceOp::Sum:
        return "sum";
      case ReduceOp::Prod:
        return "prod";
      case ReduceOp::Min:
        return "min";
      case ReduceOp::Max:
        return "max";
      default:
        panic("reduceOpName: bad op %d", static_cast<int>(op));
    }
}

namespace {

template <typename T>
msg::PayloadPtr
combineTyped(ReduceOp op, const msg::PayloadPtr &a,
             const msg::PayloadPtr &b)
{
    std::size_t n = a->size() / sizeof(T);
    auto out = std::make_shared<std::vector<std::byte>>(a->size());
    const std::byte *pa = a->data();
    const std::byte *pb = b->data();
    std::byte *po = out->data();
    for (std::size_t i = 0; i < n; ++i) {
        T x, y;
        std::memcpy(&x, pa + i * sizeof(T), sizeof(T));
        std::memcpy(&y, pb + i * sizeof(T), sizeof(T));
        T r;
        switch (op) {
          case ReduceOp::Sum:
            r = x + y;
            break;
          case ReduceOp::Prod:
            r = x * y;
            break;
          case ReduceOp::Min:
            r = std::min(x, y);
            break;
          case ReduceOp::Max:
            r = std::max(x, y);
            break;
          default:
            panic("combine: bad op %d", static_cast<int>(op));
        }
        std::memcpy(po + i * sizeof(T), &r, sizeof(T));
    }
    return out;
}

} // namespace

msg::PayloadPtr
combine(ReduceOp op, Datatype dtype, const msg::PayloadPtr &a,
        const msg::PayloadPtr &b)
{
    if (!a && !b)
        return nullptr;
    if (!a || !b)
        panic("combine: one payload null, the other not");
    if (a->size() != b->size())
        panic("combine: payload sizes differ (%zu vs %zu)", a->size(),
              b->size());
    if (a->size() % static_cast<size_t>(datatypeSize(dtype)) != 0)
        panic("combine: payload size %zu not a multiple of %s",
              a->size(), datatypeName(dtype).c_str());

    switch (dtype) {
      case Datatype::F32:
        return combineTyped<float>(op, a, b);
      case Datatype::F64:
        return combineTyped<double>(op, a, b);
      case Datatype::I32:
        return combineTyped<std::int32_t>(op, a, b);
      case Datatype::I64:
        return combineTyped<std::int64_t>(op, a, b);
      case Datatype::U8:
        return combineTyped<std::uint8_t>(op, a, b);
      default:
        panic("combine: bad datatype %d", static_cast<int>(dtype));
    }
}

Combiner
makeCombiner(ReduceOp op, Datatype dtype)
{
    return [op, dtype](const msg::PayloadPtr &a, const msg::PayloadPtr &b) {
        return combine(op, dtype, a, b);
    };
}

} // namespace ccsim::mpi
