/**
 * @file
 * Inclusive-scan (prefix) algorithms: linear pipeline and
 * recursive doubling (Hillis-Steele over ranks; era default).
 */

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

sim::Task<msg::PayloadPtr>
scanLinear(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    msg::PayloadPtr acc = std::move(mine);
    if (ctx.rank > 0) {
        co_await ctx.stage(m);
        msg::Message got = co_await ctx.recv(ctx.rank - 1);
        co_await ctx.arith(m);
        acc = ctx.fold(got.payload, acc); // earlier ranks on the left
    }
    if (ctx.rank < ctx.size - 1) {
        co_await ctx.stage(m);
        co_await ctx.send(ctx.rank + 1, m, acc);
    }
    co_return acc;
}

sim::Task<msg::PayloadPtr>
scanRecDoubling(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    // scan: fold over [segment start, rank]; total: fold over my
    // whole current segment [rank - k + 1, rank] (what gets sent).
    msg::PayloadPtr scan = mine;
    msg::PayloadPtr total = std::move(mine);

    for (int k = 1; k < ctx.size; k <<= 1) {
        int up = ctx.rank + k;
        int down = ctx.rank - k;
        Bytes handled = (up < ctx.size ? m : 0) + (down >= 0 ? m : 0);
        co_await ctx.stage(handled);
        msg::Request sreq;
        bool sent = false;
        if (up < ctx.size) {
            sreq = ctx.isend(up, m, total);
            sent = true;
        }
        if (down >= 0) {
            msg::Message got = co_await ctx.recv(down);
            co_await ctx.arith(m);
            scan = ctx.fold(got.payload, scan);
            total = ctx.fold(got.payload, total);
        }
        if (sent)
            co_await ctx.wait(std::move(sreq));
    }
    co_return scan;
}

} // namespace

sim::Task<msg::PayloadPtr>
scanImpl(CollCtx ctx, machine::Algo algo, Bytes m, msg::PayloadPtr mine)
{
    if (m < 0)
        fatal("scan: negative message length");
    if (mine && static_cast<Bytes>(mine->size()) != m)
        fatal("scan: contribution is %zu bytes, expected %lld",
              mine->size(), static_cast<long long>(m));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return mine;

    switch (algo) {
      case machine::Algo::Linear:
        co_return co_await scanLinear(ctx, m, std::move(mine));
      case machine::Algo::RecursiveDoubling:
        co_return co_await scanRecDoubling(ctx, m, std::move(mine));
      default:
        fatal("scan: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
