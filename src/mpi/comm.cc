#include "mpi/comm.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

/** Point-to-point traffic uses even contexts, collectives odd. */
int
ptpContext(int ctx_id)
{
    return ctx_id * 2;
}

int
collContext(int ctx_id)
{
    return ctx_id * 2 + 1;
}

} // namespace

Comm::Comm(machine::Machine &mach, int rank)
    : mach_(&mach), rank_(rank), size_(mach.size()), group_(nullptr),
      ctx_id_(0)
{
    if (rank < 0 || rank >= size_)
        fatal("Comm: rank %d outside machine of %d nodes", rank, size_);
}

Comm::Comm(machine::Machine &mach, int rank, int size,
           std::shared_ptr<const std::vector<int>> group, int ctx_id)
    : mach_(&mach), rank_(rank), size_(size), group_(std::move(group)),
      ctx_id_(ctx_id)
{
}

int
Comm::globalRank(int r) const
{
    if (r < 0 || r >= size_)
        panic("Comm::globalRank: rank %d outside communicator of %d", r,
              size_);
    return group_ ? (*group_)[static_cast<size_t>(r)] : r;
}

msg::Transport &
Comm::transport() const
{
    return mach_->node(globalRank(rank_));
}

Comm
Comm::subgroup(const std::vector<int> &members) const
{
    if (members.empty())
        fatal("Comm::subgroup: empty member list");

    std::vector<int> globals;
    globals.reserve(members.size());
    int my_new_rank = -1;
    for (std::size_t i = 0; i < members.size(); ++i) {
        int r = members[i];
        if (r < 0 || r >= size_)
            fatal("Comm::subgroup: member %d outside communicator of %d",
                  r, size_);
        if (r == rank_)
            my_new_rank = static_cast<int>(i);
        globals.push_back(globalRank(r));
    }
    // Duplicate check without disturbing member order.
    std::vector<int> sorted = globals;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        fatal("Comm::subgroup: duplicate member");
    if (my_new_rank < 0)
        fatal("Comm::subgroup: calling rank %d is not a member", rank_);

    int ctx = mach_->contextFor(globals);
    int new_size = static_cast<int>(globals.size());
    auto group = std::make_shared<const std::vector<int>>(
        std::move(globals));
    return Comm(*mach_, my_new_rank, new_size, std::move(group), ctx);
}

sim::Task<void>
Comm::send(int dst, int tag, Bytes bytes, msg::PayloadPtr payload) const
{
    return transport().send(globalRank(dst), tag, ptpContext(ctx_id_),
                            bytes, std::move(payload));
}

sim::Task<msg::Message>
Comm::recv(int src, int tag) const
{
    int g = src == msg::kAnySource ? src : globalRank(src);
    return transport().recv(g, tag, ptpContext(ctx_id_));
}

msg::Request
Comm::isend(int dst, int tag, Bytes bytes, msg::PayloadPtr payload) const
{
    return transport().isend(globalRank(dst), tag, ptpContext(ctx_id_),
                             bytes, std::move(payload));
}

msg::Request
Comm::irecv(int src, int tag) const
{
    int g = src == msg::kAnySource ? src : globalRank(src);
    return transport().irecv(g, tag, ptpContext(ctx_id_));
}

sim::Task<msg::Message>
Comm::wait(msg::Request req) const
{
    return transport().wait(std::move(req));
}

sim::Task<msg::Message>
Comm::sendrecv(int dst, int send_tag, Bytes bytes, int src, int recv_tag,
               msg::PayloadPtr payload) const
{
    return transport().sendrecv(globalRank(dst), send_tag, bytes,
                                globalRank(src), recv_tag,
                                ptpContext(ctx_id_), std::move(payload));
}

sim::Task<void>
Comm::compute(Time t) const
{
    msg::Transport &tp = transport();
    Time start = mach_->sim().now();
    co_await tp.busy(t);
    if (tp.trace() && tp.trace()->enabled())
        tp.trace()->record(sim::Span{globalRank(rank_),
                                     sim::SpanKind::Compute, start,
                                     mach_->sim().now(), 0, -1});
}

CollCtx
Comm::makeCtx(Coll op, Algo &algo, Combiner combiner)
{
    const machine::MachineConfig &cfg = mach_->config();
    if (algo == Algo::Default)
        algo = cfg.algorithmFor(op);

    CollCtx ctx;
    ctx.mach = mach_;
    ctx.tp = &transport();
    ctx.rank = rank_;
    ctx.size = size_;
    ctx.group = group_;
    ctx.context = collContext(ctx_id_);
    ctx.tag = coll_seq_++;
    ctx.costs = cfg.costsFor(op);
    ctx.ov = msg::CostOverride{ctx.costs.send_overhead_override,
                               ctx.costs.recv_overhead_override};
    ctx.reduce_bw = cfg.reduce_bandwidth_mbs;
    ctx.combiner = std::move(combiner);
    return ctx;
}

sim::Task<void>
Comm::barrier(Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Barrier, algo, {});
    co_await barrierImpl(ctx, algo);
}

sim::Task<void>
Comm::bcast(Bytes m, int root, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Bcast, algo, {});
    co_await bcastImpl(ctx, algo, m, root, nullptr);
}

sim::Task<void>
Comm::gather(Bytes m, int root, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Gather, algo, {});
    co_await gatherImpl(ctx, algo, m, root, nullptr);
}

sim::Task<void>
Comm::scatter(Bytes m, int root, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Scatter, algo, {});
    co_await scatterImpl(ctx, algo, m, root, nullptr);
}

sim::Task<void>
Comm::allgather(Bytes m, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Allgather, algo, {});
    co_await allgatherImpl(ctx, algo, m, nullptr);
}

sim::Task<void>
Comm::gatherv(const std::vector<Bytes> &counts, int root)
{
    Algo algo = Algo::Linear;
    CollCtx ctx = makeCtx(Coll::Gather, algo, {});
    co_await gathervImpl(ctx, counts, root, nullptr);
}

sim::Task<void>
Comm::scatterv(const std::vector<Bytes> &counts, int root)
{
    Algo algo = Algo::Linear;
    CollCtx ctx = makeCtx(Coll::Scatter, algo, {});
    co_await scattervImpl(ctx, counts, root, nullptr);
}

sim::Task<void>
Comm::alltoall(Bytes m, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Alltoall, algo, {});
    co_await alltoallImpl(ctx, algo, m, nullptr);
}

sim::Task<void>
Comm::reduce(Bytes m, int root, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Reduce, algo, {});
    co_await reduceImpl(ctx, algo, m, root, nullptr);
}

sim::Task<void>
Comm::allreduce(Bytes m, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Allreduce, algo, {});
    co_await allreduceImpl(ctx, algo, m, nullptr);
}

sim::Task<void>
Comm::reduceScatter(Bytes m, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::ReduceScatter, algo, {});
    co_await reduceScatterImpl(ctx, algo, m, nullptr);
}

sim::Task<void>
Comm::scan(Bytes m, Algo algo)
{
    CollCtx ctx = makeCtx(Coll::Scan, algo, {});
    co_await scanImpl(ctx, algo, m, nullptr);
}

} // namespace ccsim::mpi
