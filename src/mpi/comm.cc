#include "mpi/comm.hh"

#include <algorithm>

#include "machine/comm_hook.hh"
#include "tuning/selection_table.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

/** Point-to-point traffic uses even contexts, collectives odd. */
int
ptpContext(int ctx_id)
{
    return ctx_id * 2;
}

int
collContext(int ctx_id)
{
    return ctx_id * 2 + 1;
}

/**
 * Close out one timed collective call: bump the op's call count,
 * record the per-rank duration, and (rank 0 only, trace enabled)
 * sample machine-wide network counters so Chrome timelines carry
 * "C" counter tracks next to the activity spans.
 */
void
finishColl(machine::Machine *mach, int grank, stats::CollOpMetrics *om,
           Time t0)
{
    Time now = mach->sim().now();
    om->calls.add();
    om->time_us.add(toMicros(now - t0));
    if (grank == 0 && mach->trace().enabled()) {
        net::Network &net = mach->network();
        mach->trace().recordCounter(
            now, "net.payload_bytes",
            static_cast<double>(net.totalBytes()));
        if (const auto *lc = net.counters())
            mach->trace().recordCounter(now, "net.stall_us",
                                        toMicros(lc->total_stall));
    }
}

} // namespace

Comm::Comm(machine::Machine &mach, int rank)
    : mach_(&mach), rank_(rank), size_(mach.size()), group_(nullptr),
      ctx_id_(0)
{
    if (rank < 0 || rank >= size_)
        fatal("Comm: rank %d outside machine of %d nodes", rank, size_);
}

Comm::Comm(machine::Machine &mach, int rank, int size,
           std::shared_ptr<const std::vector<int>> group, int ctx_id)
    : mach_(&mach), rank_(rank), size_(size), group_(std::move(group)),
      ctx_id_(ctx_id)
{
}

int
Comm::globalRank(int r) const
{
    if (r < 0 || r >= size_)
        panic("Comm::globalRank: rank %d outside communicator of %d", r,
              size_);
    return group_ ? (*group_)[static_cast<size_t>(r)] : r;
}

msg::Transport &
Comm::transport() const
{
    return mach_->node(globalRank(rank_));
}

Comm
Comm::subgroup(const std::vector<int> &members) const
{
    if (members.empty())
        fatal("Comm::subgroup: empty member list");

    std::vector<int> globals;
    globals.reserve(members.size());
    int my_new_rank = -1;
    for (std::size_t i = 0; i < members.size(); ++i) {
        int r = members[i];
        if (r < 0 || r >= size_)
            fatal("Comm::subgroup: member %d outside communicator of %d",
                  r, size_);
        if (r == rank_)
            my_new_rank = static_cast<int>(i);
        globals.push_back(globalRank(r));
    }
    // Duplicate check without disturbing member order.
    std::vector<int> sorted = globals;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        fatal("Comm::subgroup: duplicate member");
    if (my_new_rank < 0)
        fatal("Comm::subgroup: calling rank %d is not a member", rank_);

    int ctx = mach_->contextFor(globals);
    int new_size = static_cast<int>(globals.size());
    auto group = std::make_shared<const std::vector<int>>(
        std::move(globals));
    return Comm(*mach_, my_new_rank, new_size, std::move(group), ctx);
}

sim::Task<void>
Comm::send(int dst, int tag, Bytes bytes, msg::PayloadPtr payload) const
{
    int g = globalRank(dst);
    if (auto *h = mach_->commHook())
        h->onSend(globalRank(rank_), g, tag, bytes, false);
    return transport().send(g, tag, ptpContext(ctx_id_), bytes,
                            std::move(payload));
}

sim::Task<msg::Message>
Comm::recv(int src, int tag) const
{
    int g = src == msg::kAnySource ? src : globalRank(src);
    if (auto *h = mach_->commHook())
        h->onRecv(globalRank(rank_), g, tag, false);
    return transport().recv(g, tag, ptpContext(ctx_id_));
}

msg::Request
Comm::isend(int dst, int tag, Bytes bytes, msg::PayloadPtr payload) const
{
    int g = globalRank(dst);
    if (auto *h = mach_->commHook())
        h->onSend(globalRank(rank_), g, tag, bytes, true);
    return transport().isend(g, tag, ptpContext(ctx_id_), bytes,
                             std::move(payload));
}

msg::Request
Comm::irecv(int src, int tag) const
{
    int g = src == msg::kAnySource ? src : globalRank(src);
    if (auto *h = mach_->commHook())
        h->onRecv(globalRank(rank_), g, tag, true);
    return transport().irecv(g, tag, ptpContext(ctx_id_));
}

sim::Task<msg::Message>
Comm::wait(msg::Request req) const
{
    if (auto *h = mach_->commHook())
        h->onWait(globalRank(rank_));
    return transport().wait(std::move(req));
}

sim::Task<msg::Message>
Comm::sendrecv(int dst, int send_tag, Bytes bytes, int src, int recv_tag,
               msg::PayloadPtr payload) const
{
    int gdst = globalRank(dst);
    int gsrc = globalRank(src);
    if (auto *h = mach_->commHook())
        h->onSendrecv(globalRank(rank_), gdst, send_tag, bytes, gsrc,
                      recv_tag);
    return transport().sendrecv(gdst, send_tag, bytes, gsrc, recv_tag,
                                ptpContext(ctx_id_), std::move(payload));
}

sim::Task<void>
Comm::compute(Time t) const
{
    if (auto *h = mach_->commHook())
        h->onCompute(globalRank(rank_), t);
    msg::Transport &tp = transport();
    Time start = mach_->sim().now();
    co_await tp.busy(t);
    if (tp.trace() && tp.trace()->enabled())
        tp.trace()->record(sim::Span{globalRank(rank_),
                                     sim::SpanKind::Compute, start,
                                     mach_->sim().now(), 0, -1, {}});
}

void
Comm::hookCollective(Coll op, Bytes m, int root, Algo algo,
                     const std::vector<Bytes> *counts) const
{
    if (auto *h = mach_->commHook())
        h->onCollective(globalRank(rank_), op, m, root, algo, counts,
                        group_.get());
}

CollCtx
Comm::makeCtx(Coll op, Algo &algo, Bytes m, Combiner combiner)
{
    const machine::MachineConfig &cfg = mach_->config();
    algo = tuning::resolveAlgo(cfg, op, size_, m, algo);

    CollCtx ctx;
    ctx.mach = mach_;
    ctx.tp = &transport();
    ctx.rank = rank_;
    ctx.size = size_;
    ctx.group = group_;
    ctx.context = collContext(ctx_id_);
    ctx.tag = coll_seq_++;
    ctx.costs = cfg.costsFor(op);
    ctx.ov = msg::CostOverride{ctx.costs.send_overhead_override,
                               ctx.costs.recv_overhead_override};
    ctx.reduce_bw = cfg.reduce_bandwidth_mbs;
    ctx.combiner = std::move(combiner);
    if (auto *mm = mach_->metrics())
        ctx.om = &mm->coll[static_cast<std::size_t>(op)];
    return ctx;
}

// ---- per-operation cores ----------------------------------------------
// The single place each collective assembles its context and calls
// its Impl; the public size-only and *Data forms both forward here.

sim::Task<msg::PayloadPtr>
Comm::bcastCore(Bytes m, int root, Algo algo, msg::PayloadPtr data)
{
    hookCollective(Coll::Bcast, m, root, algo);
    CollCtx ctx = makeCtx(Coll::Bcast, algo, m, {});
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await bcastImpl(std::move(ctx), algo, m, root, std::move(data));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::gatherCore(Bytes m, int root, Algo algo, msg::PayloadPtr mine)
{
    hookCollective(Coll::Gather, m, root, algo);
    CollCtx ctx = makeCtx(Coll::Gather, algo, m, {});
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await gatherImpl(std::move(ctx), algo, m, root, std::move(mine));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::scatterCore(Bytes m, int root, Algo algo, msg::PayloadPtr all)
{
    hookCollective(Coll::Scatter, m, root, algo);
    CollCtx ctx = makeCtx(Coll::Scatter, algo, m, {});
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await scatterImpl(std::move(ctx), algo, m, root, std::move(all));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::gathervCore(std::vector<Bytes> counts, int root, Algo algo,
                  msg::PayloadPtr mine)
{
    hookCollective(Coll::Gather, 0, root, algo, &counts);
    // gatherv's only algorithm is Linear; Default (and Auto) mean
    // that, not the machine's (possibly tree-shaped) gather choice.
    if (algo == Algo::Default || algo == Algo::Auto)
        algo = Algo::Linear;
    CollCtx ctx = makeCtx(Coll::Gather, algo, 0, {});
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await gathervImpl(std::move(ctx), algo, counts, root,
                                   std::move(mine));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::scattervCore(std::vector<Bytes> counts, int root, Algo algo,
                   msg::PayloadPtr all)
{
    hookCollective(Coll::Scatter, 0, root, algo, &counts);
    if (algo == Algo::Default || algo == Algo::Auto)
        algo = Algo::Linear;
    CollCtx ctx = makeCtx(Coll::Scatter, algo, 0, {});
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await scattervImpl(std::move(ctx), algo, counts, root,
                                    std::move(all));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::allgatherCore(Bytes m, Algo algo, msg::PayloadPtr mine)
{
    hookCollective(Coll::Allgather, m, -1, algo);
    CollCtx ctx = makeCtx(Coll::Allgather, algo, m, {});
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await allgatherImpl(std::move(ctx), algo, m, std::move(mine));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::alltoallCore(Bytes m, Algo algo, msg::PayloadPtr mine)
{
    hookCollective(Coll::Alltoall, m, -1, algo);
    CollCtx ctx = makeCtx(Coll::Alltoall, algo, m, {});
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await alltoallImpl(std::move(ctx), algo, m, std::move(mine));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::reduceCore(Bytes m, int root, Algo algo, Combiner combiner,
                 msg::PayloadPtr mine)
{
    hookCollective(Coll::Reduce, m, root, algo);
    CollCtx ctx = makeCtx(Coll::Reduce, algo, m, std::move(combiner));
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await reduceImpl(std::move(ctx), algo, m, root, std::move(mine));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::allreduceCore(Bytes m, Algo algo, Combiner combiner,
                    msg::PayloadPtr mine)
{
    hookCollective(Coll::Allreduce, m, -1, algo);
    CollCtx ctx = makeCtx(Coll::Allreduce, algo, m, std::move(combiner));
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await allreduceImpl(std::move(ctx), algo, m, std::move(mine));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::reduceScatterCore(Bytes m, Algo algo, Combiner combiner,
                        msg::PayloadPtr mine)
{
    hookCollective(Coll::ReduceScatter, m, -1, algo);
    CollCtx ctx = makeCtx(Coll::ReduceScatter, algo, m,
                          std::move(combiner));
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await reduceScatterImpl(std::move(ctx), algo, m, std::move(mine));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

sim::Task<msg::PayloadPtr>
Comm::scanCore(Bytes m, Algo algo, Combiner combiner,
               msg::PayloadPtr mine)
{
    hookCollective(Coll::Scan, m, -1, algo);
    CollCtx ctx = makeCtx(Coll::Scan, algo, m, std::move(combiner));
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    msg::PayloadPtr out = co_await scanImpl(std::move(ctx), algo, m, std::move(mine));
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
    co_return out;
}

// ---- size-only front-ends ---------------------------------------------

sim::Task<void>
Comm::barrier(Algo algo)
{
    hookCollective(Coll::Barrier, 0, -1, algo);
    CollCtx ctx = makeCtx(Coll::Barrier, algo, 0, {});
    stats::CollOpMetrics *om = ctx.om;
    const Time t0 = mach_->sim().now();
    co_await barrierImpl(ctx, algo);
    if (om)
        finishColl(mach_, globalRank(rank_), om, t0);
}

sim::Task<void>
Comm::bcast(Bytes m, int root, Algo algo)
{
    co_await bcastCore(m, root, algo, nullptr);
}

sim::Task<void>
Comm::gather(Bytes m, int root, Algo algo)
{
    co_await gatherCore(m, root, algo, nullptr);
}

sim::Task<void>
Comm::scatter(Bytes m, int root, Algo algo)
{
    co_await scatterCore(m, root, algo, nullptr);
}

sim::Task<void>
Comm::allgather(Bytes m, Algo algo)
{
    co_await allgatherCore(m, algo, nullptr);
}

sim::Task<void>
Comm::gatherv(const std::vector<Bytes> &counts, int root, Algo algo)
{
    co_await gathervCore(counts, root, algo, nullptr);
}

sim::Task<void>
Comm::scatterv(const std::vector<Bytes> &counts, int root, Algo algo)
{
    co_await scattervCore(counts, root, algo, nullptr);
}

sim::Task<void>
Comm::alltoall(Bytes m, Algo algo)
{
    co_await alltoallCore(m, algo, nullptr);
}

sim::Task<void>
Comm::reduce(Bytes m, int root, Algo algo)
{
    co_await reduceCore(m, root, algo, {}, nullptr);
}

sim::Task<void>
Comm::allreduce(Bytes m, Algo algo)
{
    co_await allreduceCore(m, algo, {}, nullptr);
}

sim::Task<void>
Comm::reduceScatter(Bytes m, Algo algo)
{
    co_await reduceScatterCore(m, algo, {}, nullptr);
}

sim::Task<void>
Comm::scan(Bytes m, Algo algo)
{
    co_await scanCore(m, algo, {}, nullptr);
}

} // namespace ccsim::mpi
