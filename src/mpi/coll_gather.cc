/**
 * @file
 * Gather algorithms: linear fan-in at the root (the era default —
 * the paper's measured O(p) gather latency comes from exactly this)
 * and binomial tree.
 */

#include <algorithm>

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

/**
 * Everyone sends directly to the root, which consumes arrivals in
 * whatever order they land.  Root cost per child is one receive
 * completion — the measured per-node latency slope.
 */
sim::Task<msg::PayloadPtr>
gatherLinear(CollCtx ctx, Bytes m, int root, msg::PayloadPtr mine)
{
    int p = ctx.size;
    if (ctx.rank != root) {
        co_await ctx.stage(m);
        co_await ctx.send(root, m, std::move(mine));
        co_return nullptr;
    }

    std::vector<msg::PayloadPtr> blocks(static_cast<size_t>(p));
    blocks[static_cast<size_t>(root)] = std::move(mine);
    bool carrying = blocks[static_cast<size_t>(root)] != nullptr;

    // Post every receive up front (as MPICH does): rendezvous
    // handshakes then overlap, and the root becomes wire-limited
    // instead of handshake-serialized for long messages.
    std::vector<msg::Request> reqs;
    reqs.reserve(static_cast<size_t>(p - 1));
    for (int i = 1; i < p; ++i)
        reqs.push_back(ctx.irecv(msg::kAnySource));
    for (auto &r : reqs) {
        co_await ctx.stage(m);
        msg::Message got = co_await ctx.wait(std::move(r));
        int from = ctx.commRankOf(got.src);
        if (from < 0)
            panic("gather: message from stranger node %d", got.src);
        blocks[static_cast<size_t>(from)] = got.payload;
        carrying = carrying || got.payload != nullptr;
    }
    co_return carrying ? concatPayloads(blocks) : nullptr;
}

/**
 * Binomial fan-in over root-relative ranks; each subtree forwards a
 * contiguous block of relative ranks, so the root only needs one
 * final rotation when root != 0.
 */
sim::Task<msg::PayloadPtr>
gatherBinomial(CollCtx ctx, Bytes m, int root, msg::PayloadPtr mine)
{
    int p = ctx.size;
    int r = (ctx.rank - root % p + p) % p;
    auto abs = [&](int rel) { return (rel + root) % p; };

    msg::PayloadPtr acc = std::move(mine); // covers rel [r, r + cnt)
    int cnt = 1;

    int mask = 1;
    while (mask < p) {
        if ((r & mask) == 0) {
            int src = r | mask;
            if (src < p) {
                int blk = std::min(mask, p - src);
                co_await ctx.stage(m * static_cast<Bytes>(blk));
                msg::Message got = co_await ctx.recv(abs(src));
                acc = concatPayload(acc, got.payload);
                cnt += blk;
            }
        } else {
            co_await ctx.stage(m * static_cast<Bytes>(cnt));
            co_await ctx.send(abs(r - mask),
                              m * static_cast<Bytes>(cnt), acc);
            co_return nullptr;
        }
        mask <<= 1;
    }
    co_return rotateBlocksToAbsolute(acc, p, m, root);
}

} // namespace

sim::Task<msg::PayloadPtr>
gathervImpl(CollCtx ctx, machine::Algo algo,
            const std::vector<Bytes> &counts, int root,
            msg::PayloadPtr mine)
{
    int p = ctx.size;
    if (algo != machine::Algo::Linear)
        fatal("gatherv: only the linear algorithm is implemented, "
              "got %s", machine::algoName(algo).c_str());
    if (root < 0 || root >= p)
        fatal("gatherv: root %d outside communicator of %d", root, p);
    if (static_cast<int>(counts.size()) != p)
        fatal("gatherv: %zu counts for %d ranks", counts.size(), p);
    for (Bytes c : counts)
        if (c < 0)
            fatal("gatherv: negative count");
    Bytes my_count = counts[static_cast<size_t>(ctx.rank)];
    if (mine && static_cast<Bytes>(mine->size()) != my_count)
        fatal("gatherv: contribution is %zu bytes, expected %lld",
              mine->size(), static_cast<long long>(my_count));

    co_await ctx.entry();
    if (p == 1)
        co_return mine;

    if (ctx.rank != root) {
        co_await ctx.stage(my_count);
        co_await ctx.send(root, my_count, std::move(mine));
        co_return nullptr;
    }

    std::vector<msg::PayloadPtr> blocks(static_cast<size_t>(p));
    blocks[static_cast<size_t>(root)] = std::move(mine);
    bool carrying = blocks[static_cast<size_t>(root)] != nullptr;
    std::vector<msg::Request> reqs;
    for (int i = 0; i < p; ++i)
        if (i != root)
            reqs.push_back(ctx.irecv(msg::kAnySource));
    for (auto &r : reqs) {
        msg::Message got = co_await ctx.wait(std::move(r));
        int from = ctx.commRankOf(got.src);
        if (from < 0)
            panic("gatherv: message from stranger node %d", got.src);
        co_await ctx.stage(got.bytes);
        blocks[static_cast<size_t>(from)] = got.payload;
        carrying = carrying || got.payload != nullptr;
    }
    co_return carrying ? concatPayloads(blocks) : nullptr;
}

sim::Task<msg::PayloadPtr>
gatherImpl(CollCtx ctx, machine::Algo algo, Bytes m, int root,
           msg::PayloadPtr mine)
{
    if (root < 0 || root >= ctx.size)
        fatal("gather: root %d outside communicator of %d", root,
              ctx.size);
    if (m < 0)
        fatal("gather: negative message length");
    if (mine && static_cast<Bytes>(mine->size()) != m)
        fatal("gather: contribution is %zu bytes, expected %lld",
              mine->size(), static_cast<long long>(m));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return mine;

    switch (algo) {
      case machine::Algo::Linear:
        co_return co_await gatherLinear(ctx, m, root, std::move(mine));
      case machine::Algo::Binomial:
        co_return co_await gatherBinomial(ctx, m, root, std::move(mine));
      default:
        fatal("gather: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
