/**
 * @file
 * CollCtx: everything one collective invocation at one rank needs —
 * rank translation, the per-call tag/context, the machine's per-op
 * software cost calibration, and small coroutine helpers the
 * algorithms are written against.
 *
 * All algorithm code addresses *communicator* ranks; CollCtx
 * translates to global node ids at the transport boundary, so every
 * algorithm works unchanged on sub-communicators.
 */

#ifndef CCSIM_MPI_COLL_CTX_HH
#define CCSIM_MPI_COLL_CTX_HH

#include <memory>
#include <vector>

#include "machine/machine.hh"
#include "mpi/reduce_op.hh"
#include "msg/transport.hh"
#include "sim/task.hh"

namespace ccsim::mpi {

/** Per-invocation state shared by all collective algorithms. */
struct CollCtx
{
    machine::Machine *mach = nullptr;
    msg::Transport *tp = nullptr; //!< my endpoint

    int rank = 0; //!< my rank within the communicator
    int size = 1; //!< communicator size

    /** comm rank -> global node id (null = identity / world). */
    std::shared_ptr<const std::vector<int>> group;

    int context = 0; //!< collective context id of the communicator
    int tag = 0;     //!< this invocation's tag

    machine::CollCosts costs;  //!< per-op software calibration
    msg::CostOverride ov;      //!< derived overhead overrides
    double reduce_bw = 100.0;  //!< combine bandwidth, MB/s

    Combiner combiner; //!< null in size-only mode

    /** This operation's metrics group (null: collection off).  The
     *  ctx-level helpers count stages and messages here, so every
     *  algorithm in coll_*.cc is covered without per-algorithm
     *  instrumentation. */
    stats::CollOpMetrics *om = nullptr;

    /** Global node id of communicator rank @p r. */
    int
    global(int r) const
    {
        return group ? (*group)[static_cast<size_t>(r)] : r;
    }

    /** Charge the one-time collective entry cost. */
    sim::Task<void> entry() const { return tp->busy(costs.entry); }

    /**
     * Charge one algorithm stage's software cost; @p bytes is the
     * payload this rank handles in the stage (for the per-byte
     * component of the vendor-MPI calibration).
     */
    sim::Task<void>
    stage(Bytes bytes = 0) const
    {
        if (om)
            om->stages.add();
        Time per_byte = nanoseconds(costs.per_stage_ns_per_byte *
                                    static_cast<double>(bytes));
        return tp->busy(costs.per_stage + per_byte);
    }

    /** Charge the arithmetic to combine @p m bytes of operands. */
    sim::Task<void>
    arith(Bytes m) const
    {
        double bw = costs.reduce_bandwidth_override_mbs > 0
                        ? costs.reduce_bandwidth_override_mbs
                        : reduce_bw;
        return tp->busy(transferTime(m, bw));
    }

    /** Send @p bytes to communicator rank @p to. */
    sim::Task<void>
    send(int to, Bytes bytes, msg::PayloadPtr payload = nullptr) const
    {
        if (om)
            om->msgs.add();
        return tp->send(global(to), tag, context, bytes,
                        std::move(payload), ov);
    }

    /** Receive from communicator rank @p from (kAnySource allowed). */
    sim::Task<msg::Message>
    recv(int from) const
    {
        int src = from == msg::kAnySource ? from : global(from);
        return tp->recv(src, tag, context, ov);
    }

    /** Nonblocking send to communicator rank @p to. */
    msg::Request
    isend(int to, Bytes bytes, msg::PayloadPtr payload = nullptr) const
    {
        if (om)
            om->msgs.add();
        return tp->isend(global(to), tag, context, bytes,
                         std::move(payload), ov);
    }

    /** Nonblocking receive from communicator rank @p from. */
    msg::Request
    irecv(int from) const
    {
        int src = from == msg::kAnySource ? from : global(from);
        return tp->irecv(src, tag, context, ov);
    }

    /** Wait on a request started through this context. */
    sim::Task<msg::Message>
    wait(msg::Request r) const
    {
        return tp->wait(std::move(r));
    }

    /** Concurrent exchange with two (possibly equal) partners. */
    sim::Task<msg::Message>
    sendrecv(int to, Bytes bytes, int from,
             msg::PayloadPtr payload = nullptr) const
    {
        if (om)
            om->msgs.add();
        return tp->sendrecv(global(to), tag, bytes, global(from), tag,
                            context, std::move(payload), ov);
    }

    /** Combine payloads (null-safe in size-only mode). */
    msg::PayloadPtr
    fold(const msg::PayloadPtr &a, const msg::PayloadPtr &b) const
    {
        if (!combiner)
            return nullptr;
        return combiner(a, b);
    }

    /** Translate comm rank by offset with wraparound. */
    int
    relative(int base, int offset) const
    {
        int r = (base + offset) % size;
        return r < 0 ? r + size : r;
    }

    /** Communicator rank owning global node id @p g (-1 if absent). */
    int
    commRankOf(int g) const
    {
        if (!group)
            return g < size ? g : -1;
        for (int i = 0; i < size; ++i)
            if ((*group)[static_cast<size_t>(i)] == g)
                return i;
        return -1;
    }
};

/** Smallest e with 2^e >= p (p >= 1). */
int ceilLog2(int p);

/** Largest e with 2^e <= p (p >= 1). */
int floorLog2(int p);

/** True when p is a power of two. */
bool isPow2(int p);

/** Slice @p bytes [offset, offset+len) out of a payload (null-safe). */
msg::PayloadPtr slicePayload(const msg::PayloadPtr &p, Bytes offset,
                             Bytes len);

/** Concatenate two payloads (null-safe: both null -> null). */
msg::PayloadPtr concatPayload(const msg::PayloadPtr &a,
                              const msg::PayloadPtr &b);

/** Concatenate many payloads in order (all-null -> null). */
msg::PayloadPtr concatPayloads(const std::vector<msg::PayloadPtr> &parts);

/**
 * Reorder a root-relative concatenation of p equal m-byte blocks
 * into absolute rank order: output block i is input block
 * (i - root) mod p.  Null-safe.
 */
msg::PayloadPtr rotateBlocksToAbsolute(const msg::PayloadPtr &rel,
                                       int p, Bytes m, int root);

/** Inverse of rotateBlocksToAbsolute: block j is input block
 *  (root + j) mod p.  Null-safe. */
msg::PayloadPtr rotateBlocksToRelative(const msg::PayloadPtr &abs,
                                       int p, Bytes m, int root);

} // namespace ccsim::mpi

#endif // CCSIM_MPI_COLL_CTX_HH
