/**
 * @file
 * Reduce-scatter algorithms: linear (reduce + scatter composition),
 * recursive halving (power-of-two sizes; the building block of
 * Rabenseifner's allreduce), and pairwise exchange (any size).
 *
 * Semantics: every rank contributes p blocks of m bytes; block i of
 * the elementwise fold over all contributions ends up at rank i.
 */

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

/** Block i of a p-block contribution (null-safe). */
msg::PayloadPtr
blockOf(const msg::PayloadPtr &all, int i, Bytes m)
{
    return slicePayload(all, m * static_cast<Bytes>(i), m);
}

sim::Task<msg::PayloadPtr>
reduceScatterLinear(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    // Fold the whole p*m vector at rank 0, then scatter the blocks.
    CollCtx sub = ctx;
    sub.costs.entry = 0;
    msg::PayloadPtr total =
        co_await reduceImpl(sub, machine::Algo::Binomial,
                            m * static_cast<Bytes>(ctx.size), 0,
                            std::move(mine));
    co_return co_await scatterImpl(sub, machine::Algo::Binomial, m, 0,
                                   std::move(total));
}

/** Power-of-two halving exchange; O(log p) rounds, each moving and
 *  folding half of the remaining range. */
sim::Task<msg::PayloadPtr>
reduceScatterHalving(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;
    int lo = 0;
    int hi = p; // my active block range [lo, hi)
    msg::PayloadPtr acc = std::move(mine);

    for (int half = p / 2; half >= 1; half >>= 1) {
        int partner = ctx.rank ^ half;
        int mid = lo + (hi - lo) / 2;
        bool keep_low = ctx.rank < mid;

        Bytes keep_off =
            m * static_cast<Bytes>((keep_low ? lo : mid) - lo);
        Bytes send_off =
            m * static_cast<Bytes>((keep_low ? mid : lo) - lo);
        Bytes half_bytes = m * static_cast<Bytes>(hi - lo) / 2;

        co_await ctx.stage(2 * half_bytes);
        msg::Message got = co_await ctx.sendrecv(
            partner, half_bytes, partner,
            slicePayload(acc, send_off, half_bytes));
        co_await ctx.arith(half_bytes);
        acc = ctx.fold(slicePayload(acc, keep_off, half_bytes),
                       got.payload);

        if (keep_low)
            hi = mid;
        else
            lo = mid;
    }
    co_return acc;
}

/** Any-p pairwise exchange: p-1 rounds of one m-byte block each. */
sim::Task<msg::PayloadPtr>
reduceScatterPairwise(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;
    msg::PayloadPtr acc = blockOf(mine, ctx.rank, m);
    for (int i = 1; i < p; ++i) {
        int to = ctx.relative(ctx.rank, i);
        int from = ctx.relative(ctx.rank, -i);
        co_await ctx.stage(2 * m);
        msg::Message got = co_await ctx.sendrecv(
            to, m, from, blockOf(mine, to, m));
        co_await ctx.arith(m);
        acc = ctx.fold(acc, got.payload);
    }
    co_return acc;
}

} // namespace

sim::Task<msg::PayloadPtr>
reduceScatterImpl(CollCtx ctx, machine::Algo algo, Bytes m,
                  msg::PayloadPtr mine)
{
    if (m < 0)
        fatal("reduce-scatter: negative message length");
    if (mine && static_cast<Bytes>(mine->size()) !=
                    m * static_cast<Bytes>(ctx.size))
        fatal("reduce-scatter: contribution is %zu bytes, expected "
              "%lld", mine->size(),
              static_cast<long long>(m * ctx.size));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return slicePayload(mine, 0, m);

    if (algo == machine::Algo::RecursiveHalving && !isPow2(ctx.size))
        algo = machine::Algo::Pairwise;

    switch (algo) {
      case machine::Algo::Linear:
        co_return co_await reduceScatterLinear(ctx, m,
                                               std::move(mine));
      case machine::Algo::RecursiveHalving:
        co_return co_await reduceScatterHalving(ctx, m,
                                                std::move(mine));
      case machine::Algo::Pairwise:
        co_return co_await reduceScatterPairwise(ctx, m,
                                                 std::move(mine));
      default:
        fatal("reduce-scatter: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
