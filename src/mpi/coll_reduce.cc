/**
 * @file
 * Reduce algorithms: linear fan-in and binomial tree (era default).
 * All supported operators are associative and commutative, so
 * arrival-order folding is sound.
 */

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

sim::Task<msg::PayloadPtr>
reduceLinear(CollCtx ctx, Bytes m, int root, msg::PayloadPtr mine)
{
    int p = ctx.size;
    if (ctx.rank != root) {
        co_await ctx.stage(m);
        co_await ctx.send(root, m, std::move(mine));
        co_return nullptr;
    }
    msg::PayloadPtr acc = std::move(mine);
    for (int i = 1; i < p; ++i) {
        co_await ctx.stage(m);
        msg::Message got = co_await ctx.recv(msg::kAnySource);
        co_await ctx.arith(m);
        acc = ctx.fold(acc, got.payload);
    }
    co_return acc;
}

sim::Task<msg::PayloadPtr>
reduceBinomial(CollCtx ctx, Bytes m, int root, msg::PayloadPtr mine)
{
    int p = ctx.size;
    int r = (ctx.rank - root % p + p) % p;
    auto abs = [&](int rel) { return (rel + root) % p; };

    msg::PayloadPtr acc = std::move(mine);
    int mask = 1;
    while (mask < p) {
        if ((r & mask) == 0) {
            int src = r | mask;
            if (src < p) {
                co_await ctx.stage(m);
                msg::Message got = co_await ctx.recv(abs(src));
                co_await ctx.arith(m);
                acc = ctx.fold(acc, got.payload);
            }
        } else {
            co_await ctx.stage(m);
            co_await ctx.send(abs(r - mask), m, acc);
            co_return nullptr;
        }
        mask <<= 1;
    }
    co_return acc;
}

} // namespace

sim::Task<msg::PayloadPtr>
reduceImpl(CollCtx ctx, machine::Algo algo, Bytes m, int root,
           msg::PayloadPtr mine)
{
    if (root < 0 || root >= ctx.size)
        fatal("reduce: root %d outside communicator of %d", root,
              ctx.size);
    if (m < 0)
        fatal("reduce: negative message length");
    if (mine && static_cast<Bytes>(mine->size()) != m)
        fatal("reduce: contribution is %zu bytes, expected %lld",
              mine->size(), static_cast<long long>(m));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return mine;

    switch (algo) {
      case machine::Algo::Linear:
        co_return co_await reduceLinear(ctx, m, root, std::move(mine));
      case machine::Algo::Binomial:
        co_return co_await reduceBinomial(ctx, m, root, std::move(mine));
      default:
        fatal("reduce: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
