/**
 * @file
 * Total-exchange (alltoall) algorithms: linear (all nonblocking,
 * staggered), pairwise exchange (era default; XOR partners on
 * power-of-two sizes, ring offsets otherwise), and the Bruck
 * log-round algorithm for short messages.
 */

#include "mpi/collectives.hh"
#include "util/logging.hh"

namespace ccsim::mpi {

namespace {

/** Block i of a p-block alltoall contribution (null-safe). */
msg::PayloadPtr
blockOf(const msg::PayloadPtr &all, int i, Bytes m)
{
    return slicePayload(all, m * static_cast<Bytes>(i), m);
}

sim::Task<msg::PayloadPtr>
alltoallLinear(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;
    std::vector<msg::PayloadPtr> out(static_cast<size_t>(p));
    out[static_cast<size_t>(ctx.rank)] = blockOf(mine, ctx.rank, m);

    std::vector<msg::Request> rreqs;
    std::vector<msg::Request> sreqs;
    rreqs.reserve(static_cast<size_t>(p - 1));
    sreqs.reserve(static_cast<size_t>(p - 1));
    for (int i = 1; i < p; ++i)
        rreqs.push_back(ctx.irecv(ctx.relative(ctx.rank, -i)));
    for (int i = 1; i < p; ++i) {
        int dst = ctx.relative(ctx.rank, i);
        co_await ctx.stage(2 * m);
        sreqs.push_back(ctx.isend(dst, m, blockOf(mine, dst, m)));
    }
    for (auto &r : rreqs) {
        msg::Message got = co_await ctx.wait(std::move(r));
        int from = ctx.commRankOf(got.src);
        if (from < 0)
            panic("alltoall: message from stranger node %d", got.src);
        out[static_cast<size_t>(from)] = got.payload;
    }
    for (auto &s : sreqs)
        co_await ctx.wait(std::move(s));
    co_return concatPayloads(out);
}

sim::Task<msg::PayloadPtr>
alltoallPairwise(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;
    bool pow2 = isPow2(p);
    std::vector<msg::PayloadPtr> out(static_cast<size_t>(p));
    out[static_cast<size_t>(ctx.rank)] = blockOf(mine, ctx.rank, m);

    for (int i = 1; i < p; ++i) {
        int to, from;
        if (pow2) {
            to = from = ctx.rank ^ i; // true pairwise exchange
        } else {
            to = ctx.relative(ctx.rank, i);
            from = ctx.relative(ctx.rank, -i);
        }
        co_await ctx.stage(2 * m);
        msg::Message got =
            co_await ctx.sendrecv(to, m, from, blockOf(mine, to, m));
        out[static_cast<size_t>(from)] = got.payload;
    }
    co_return concatPayloads(out);
}

/**
 * Bruck: ceil(log2 p) rounds of combined blocks.  Fewer, larger
 * messages — wins for small m, loses for large m (each block moves
 * up to log2 p times).
 */
sim::Task<msg::PayloadPtr>
alltoallBruck(CollCtx ctx, Bytes m, msg::PayloadPtr mine)
{
    int p = ctx.size;

    // Phase 1: local rotation so slot i holds the block destined to
    // relative rank i.
    std::vector<msg::PayloadPtr> cur(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i)
        cur[static_cast<size_t>(i)] =
            blockOf(mine, ctx.relative(ctx.rank, i), m);

    // Phase 2: for each bit k, every slot whose index has that bit
    // set advances 2^k ranks forward; refill the slots from behind.
    for (int k = 1; k < p; k <<= 1) {
        std::vector<int> idx;
        for (int i = 1; i < p; ++i)
            if (i & k)
                idx.push_back(i);

        std::vector<msg::PayloadPtr> parts;
        parts.reserve(idx.size());
        for (int i : idx)
            parts.push_back(cur[static_cast<size_t>(i)]);
        msg::PayloadPtr sendbuf = concatPayloads(parts);
        Bytes bytes = m * static_cast<Bytes>(idx.size());

        int to = ctx.relative(ctx.rank, k);
        int from = ctx.relative(ctx.rank, -k);
        co_await ctx.stage(2 * bytes);
        msg::Message got = co_await ctx.sendrecv(to, bytes, from,
                                                 std::move(sendbuf));
        for (std::size_t j = 0; j < idx.size(); ++j)
            cur[static_cast<size_t>(idx[j])] =
                got.payload
                    ? slicePayload(got.payload,
                                   m * static_cast<Bytes>(j), m)
                    : nullptr;
    }

    // Phase 3: inverse rotation; slot i now holds the block *from*
    // relative rank -i.
    std::vector<msg::PayloadPtr> out(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i)
        out[static_cast<size_t>(ctx.relative(ctx.rank, -i))] =
            cur[static_cast<size_t>(i)];
    co_return concatPayloads(out);
}

} // namespace

sim::Task<msg::PayloadPtr>
alltoallImpl(CollCtx ctx, machine::Algo algo, Bytes m,
             msg::PayloadPtr mine)
{
    if (m < 0)
        fatal("alltoall: negative message length");
    if (mine && static_cast<Bytes>(mine->size()) !=
                    m * static_cast<Bytes>(ctx.size))
        fatal("alltoall: contribution is %zu bytes, expected %lld",
              mine->size(), static_cast<long long>(m * ctx.size));

    co_await ctx.entry();
    if (ctx.size == 1)
        co_return blockOf(mine, 0, m);

    switch (algo) {
      case machine::Algo::Linear:
        co_return co_await alltoallLinear(ctx, m, std::move(mine));
      case machine::Algo::Pairwise:
        co_return co_await alltoallPairwise(ctx, m, std::move(mine));
      case machine::Algo::Bruck:
        co_return co_await alltoallBruck(ctx, m, std::move(mine));
      default:
        fatal("alltoall: unsupported algorithm '%s'",
              machine::algoName(algo).c_str());
    }
}

} // namespace ccsim::mpi
