/**
 * @file
 * ccsim — single public umbrella header.
 *
 * Applications (the examples, the CLI, external users) include only
 * this header; everything re-exported here is the stable surface of
 * the library:
 *
 *  - machine::MachineConfig + the paper presets, machine::Machine,
 *    config file I/O;
 *  - net::Topology / RouteCursor / makeTopology — the analytic
 *    routing surface (docs/TOPOLOGY.md): stream a route one link at
 *    a time in O(1) memory, or build any fabric from a spec string
 *    ("fattree:2;4,4;1,2", "hier:2x4/dragonfly", ...);
 *  - mpi::Comm — the collective API rank programs run against;
 *  - harness::measureCollective / SweepSpec / SweepRunner — the
 *    Section 2 measurement procedure and the parallel sweep engine;
 *  - tuning — SelectionTable (the per-(op, p, m) decision map behind
 *    Algo::Auto), the built-in fixed tables for the paper's
 *    machines, the empirical tuner (tuneMachine), and the shared
 *    --algo/--selection CLI surface;
 *  - model — Table 3 expressions, paper-style fitting, Hockney fits,
 *    and the closed-form predictor;
 *  - fault — FaultSpec / FaultInjector / FaultReport for
 *    deterministic fault-injection scenarios;
 *  - replay — TraceParser / Recorder / Replayer: record any run as a
 *    plain-text action trace and replay it on any machine (plus
 *    machine::CommHook, the observation interface the Recorder
 *    implements);
 *  - stats — the metrics registry and MetricsSnapshot, the
 *    observability layer every run can expose (docs/METRICS.md);
 *  - serve — the prediction service (docs/SERVE.md): the wire
 *    protocol, the three-tier Server behind `ccsim serve`, the
 *    blocking Client behind `ccsim query`, and the FastPath
 *    fitted-model store the examples build tables from;
 *  - ccsim::Error and its typed subclasses (FatalError, PanicError,
 *    fault::FaultError, replay::TraceError, machine::ConfigError) —
 *    catch the base once, exit with exitCode();
 *  - cli::Options — the one flag-schema parser every binary uses;
 *  - sim::Trace plus the util table/units/logging helpers the above
 *    hand out in their interfaces.
 *
 * Headers under src/ not reachable from here (sim/simulator.hh,
 * net/network.hh and the concrete topology headers, the msg/
 * transport, the collective algorithm internals) are library
 * internals: they may change layout or signature without notice.
 * See docs/EXTENDING.md for the internal-header map and how to grow
 * the simulator itself.
 */

#ifndef CCSIM_CCSIM_HH
#define CCSIM_CCSIM_HH

#include "fault/fault_injector.hh"
#include "fault/fault_report.hh"
#include "fault/fault_spec.hh"
#include "harness/measure.hh"
#include "harness/sweep.hh"
#include "machine/comm_hook.hh"
#include "machine/config_io.hh"
#include "machine/machine.hh"
#include "machine/machine_config.hh"
#include "model/fit.hh"
#include "model/hockney.hh"
#include "model/paper_data.hh"
#include "model/predictor.hh"
#include "mpi/comm.hh"
#include "net/topology.hh"
#include "net/topology_factory.hh"
#include "replay/recorder.hh"
#include "replay/replayer.hh"
#include "replay/trace_parser.hh"
#include "serve/backfill.hh"
#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/fastpath.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/trace.hh"
#include "stats/metrics.hh"
#include "stats/snapshot.hh"
#include "tuning/selection_cli.hh"
#include "tuning/selection_table.hh"
#include "tuning/tuner.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/units.hh"

#endif // CCSIM_CCSIM_HH
